"""Request coalescing: concurrent same-matrix SpMVs become one SpMM.

Iterative solvers and replicated model serving produce many *concurrent*
SpMV requests against the same matrix.  Executing them one by one pays
the per-dispatch overhead (and the matrix traffic) once per vector; the
multi-RHS path (:func:`~repro.serve.batch.run_plan_spmm`) pays it once
per *batch* -- the paper's conclusion motivates exactly this
multiple-vector extension.  The :class:`RequestScheduler` sits in front
of a server and converts concurrency into batch width:

- requests for the same matrix (same structural fingerprint *and* the
  same values -- the fingerprint deliberately ignores values, so
  coalescing on it alone would compute with the wrong matrix) join that
  matrix's pending queue;
- a batch is taken from the queue when it holds ``max_batch`` requests
  (the filling thread dispatches it inline), when the oldest member's
  ``max_wait_seconds`` window expires (a background dispatcher thread
  watches deadlines), or when the scheduler closes;
- one flush executes ``A @ [x_1 .. x_k]`` and every member of the batch
  receives its own column -- bit-identical to a sequential ``submit``,
  because the batched kernels compute each column independently.

Multi-tenancy: every request carries a *tenant*.  When the policy sets
``fair=True``, batch composition is chosen by
:func:`~repro.serve.frontdoor.fair_allocation` -- round-robin slots
across tenants with pending demand -- so one hot tenant cannot
monopolise a coalesce group: every other tenant keeps its fair floor of
``max_batch // n_active`` slots per batch, and the hot tenant's excess
waits (and eventually sheds against its own bound) instead of starving
siblings.

Admission control: at most ``max_queue`` requests may be waiting for a
flush (and at most ``max_queue_per_tenant`` per tenant, when set); one
more raises :class:`~repro.errors.QueueFullError` -- naming the tenant
when the per-tenant bound tripped -- instead of buffering unboundedly
(backpressure belongs at the boundary, not in an ever-growing queue).
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DeviceError, QueueFullError
from repro.formats.csr import CSRMatrix
from repro.observe.registry import MetricsRegistry, get_registry
from repro.observe.spans import activate_trace, span
from repro.serve.fingerprint import fingerprint_matrix
from repro.serve.frontdoor import DEFAULT_TENANT, fair_allocation
from repro.trace.context import TraceContext, capture_context
from repro.utils.validation import check_spmv_operand

__all__ = [
    "CoalescePolicy",
    "ScheduledResult",
    "SchedulerStats",
    "RequestScheduler",
]

#: Signature of the batched executor behind the scheduler: takes the
#: matrix and a ``(ncols, k)`` RHS block, returns the batch outcome
#: (e.g. a :class:`~repro.serve.server.SubmitResult` with ``y`` of
#: shape ``(nrows, k)``).
BatchExecute = Callable[[CSRMatrix, np.ndarray], Any]

#: Batch-width histogram buckets (powers of two up to typical widths).
_WIDTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(frozen=True)
class CoalescePolicy:
    """Bounds on the coalescing behaviour.

    Parameters
    ----------
    max_batch:
        Flush a batch as soon as a matrix's queue holds this many
        requests.
    max_wait_seconds:
        Longest a request waits for siblings before its batch flushes
        anyway -- the latency the first request in a batch pays to buy
        batching.  ``0`` disables waiting (every request dispatches
        immediately at width 1).
    max_queue:
        Admission bound: most requests allowed to be waiting for a
        flush at once; one more raises
        :class:`~repro.errors.QueueFullError`.
    max_queue_per_tenant:
        Per-tenant admission bound: most waiting requests any one
        tenant may hold; one more raises
        :class:`~repro.errors.QueueFullError` *naming the tenant*.
        ``None`` (default) applies only the global bound.
    fair:
        Select batch composition with
        :func:`~repro.serve.frontdoor.fair_allocation` across tenants
        (round-robin slots, FIFO within a tenant) instead of pure FIFO,
        so one tenant cannot monopolise a coalesce group.
    """

    max_batch: int = 8
    max_wait_seconds: float = 0.005
    max_queue: int = 256
    max_queue_per_tenant: Optional[int] = None
    fair: bool = False

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be > 0, got {self.max_batch}")
        if self.max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds must be >= 0, got {self.max_wait_seconds}"
            )
        if self.max_queue <= 0:
            raise ValueError(f"max_queue must be > 0, got {self.max_queue}")
        if self.max_queue_per_tenant is not None \
                and self.max_queue_per_tenant <= 0:
            raise ValueError(
                f"max_queue_per_tenant must be > 0, "
                f"got {self.max_queue_per_tenant}"
            )


@dataclass(frozen=True)
class ScheduledResult:
    """What one coalesced ``submit`` receives back.

    ``batch`` is the *shared* outcome of the whole flushed batch (every
    member receives the same object); ``column`` is this request's
    column inside it.
    """

    #: The batched executor's return value for the whole batch.
    batch: Any
    #: This request's column index within the batch.
    column: int
    #: How many requests the batch held when it flushed.
    width: int
    #: Why the batch flushed: ``"full"``, ``"window"`` or ``"close"``.
    cause: str
    #: Trace id of the shared dispatch trace (the fan-in trace linking
    #: every member request), when any member was traced; else ``None``.
    dispatch_trace_id: Optional[str] = None


@dataclass(frozen=True)
class SchedulerStats:
    """Point-in-time snapshot of the scheduler's accounting."""

    #: Requests admitted (eventually served by some flush).
    submitted: int
    #: Requests rejected with :class:`QueueFullError` (any bound).
    rejected: int
    #: Groups flushed (each is one batched dispatch).
    batches: int
    #: Requests served across all flushed groups.
    coalesced_rhs: int
    #: Widest group flushed so far.
    max_width: int
    #: Flush counts by cause (``full`` / ``window`` / ``close``).
    flushes: Dict[str, int] = field(default_factory=dict)
    #: Rejections charged to the per-tenant bound, by tenant.
    rejected_tenants: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_width(self) -> float:
        """Average requests per flushed group (1.0 = no coalescing won)."""
        return self.coalesced_rhs / self.batches if self.batches else 0.0

    def describe(self) -> str:
        """Readable one-per-line summary (CLI / logs)."""
        causes = ", ".join(
            f"{cause}={count}" for cause, count in sorted(self.flushes.items())
        ) or "none"
        lines = [
            f"requests           : {self.submitted} admitted / "
            f"{self.rejected} rejected",
            f"batches            : {self.batches} "
            f"(mean width {self.mean_width:.2f}, max {self.max_width})",
            f"flush causes       : {causes}",
        ]
        if self.rejected_tenants:
            per_tenant = ", ".join(
                f"{tenant}={count}"
                for tenant, count in sorted(self.rejected_tenants.items())
            )
            lines.append(f"tenant rejections  : {per_tenant}")
        return "\n".join(lines)


class _Member:
    """One queued request, waiting to be selected into a batch."""

    __slots__ = ("tenant", "x", "seq", "deadline", "trace_ref", "recorder",
                 "batch", "column")

    def __init__(self, tenant: str, x: np.ndarray, seq: int, deadline: float):
        self.tenant = tenant
        self.x = x
        self.seq = seq
        self.deadline = deadline
        #: ``(trace_id, span_id)`` of the member's request span, when
        #: traced; the flush's fan-in dispatch trace links back to it.
        self.trace_ref: Optional[Tuple[str, str]] = None
        self.recorder: Any = None
        #: The flushed :class:`_Batch` serving this member (set under
        #: the scheduler lock; ``None`` while still queued).
        self.batch: Optional["_Batch"] = None
        self.column = -1


class _Batch:
    """One flushed batch: the members that share a single dispatch."""

    __slots__ = ("matrix", "members", "cause", "result", "error",
                 "dispatch_trace_id", "done")

    def __init__(self, matrix: CSRMatrix, members: List[_Member], cause: str):
        self.matrix = matrix
        self.members = members
        self.cause = cause
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.dispatch_trace_id: Optional[str] = None
        self.done = threading.Event()


class _KeyQueue:
    """Pending members for one coalescing key, in arrival order."""

    __slots__ = ("matrix", "members")

    def __init__(self, matrix: CSRMatrix):
        self.matrix = matrix
        self.members: List[_Member] = []


def _coalesce_key(
    matrix: CSRMatrix, fingerprint=fingerprint_matrix
) -> Tuple[Any, bytes]:
    """Identity under which requests may share one dispatch.

    The structural fingerprint ignores values by design (values change
    every iteration in solver traffic while the *plan* stays valid), so
    it alone is not a safe coalescing key: two matrices with one pattern
    but different values must not share a dispatch.  Pair it with a
    digest of the value array -- always computed fresh (never memoised):
    values legitimately mutate in place between submits.
    """
    digest = hashlib.blake2b(
        np.ascontiguousarray(matrix.val).tobytes(), digest_size=16
    ).digest()
    return fingerprint(matrix), digest


class RequestScheduler:
    """Admission-controlled coalescing queue in front of a batch executor.

    Parameters
    ----------
    execute:
        The batched path to dispatch flushed batches through -- for the
        server integration, a bound ``submit_batch``.  Called with
        ``(matrix, X)`` where ``X`` stacks the batch's vectors as
        columns.  Must be thread-safe (flushes can run concurrently on
        the filling thread and the dispatcher thread).
    policy:
        Batch-width / wait-window / admission bounds and the tenant
        fairness switch.
    registry:
        Metrics registry for ``scheduler_*`` instruments.
    """

    def __init__(
        self,
        execute: BatchExecute,
        policy: CoalescePolicy = CoalescePolicy(),
        *,
        registry: Optional[MetricsRegistry] = None,
        fingerprint=None,
    ):
        self._execute = execute
        # Structural-fingerprint hook: the server injects its identity
        # cache so repeated same-object submits skip hashing here too.
        self._fingerprint = (
            fingerprint if fingerprint is not None else fingerprint_matrix
        )
        self.policy = policy
        self.registry = get_registry() if registry is None else registry
        self._cond = threading.Condition()
        self._queues: Dict[Tuple[Any, bytes], _KeyQueue] = {}
        self._seq = itertools.count()
        self._pending = 0
        self._tenant_pending: Dict[str, int] = {}
        self._closed = False
        self._submitted = 0
        self._rejected = 0
        self._rejected_tenants: Dict[str, int] = {}
        self._batches = 0
        self._coalesced_rhs = 0
        self._max_width = 0
        self._flushes: Dict[str, int] = {}
        #: Rotates the fair-allocation starting tenant so remainder
        #: slots do not always favour the same tenant.
        self._rotation = 0
        self._m_requests = {
            outcome: self.registry.counter(
                "scheduler_requests_total", {"outcome": outcome},
                help_text="Coalescing-scheduler admissions by outcome.",
            )
            for outcome in ("accepted", "rejected")
        }
        self._m_batches = {
            cause: self.registry.counter(
                "scheduler_batches_total", {"cause": cause},
                help_text="Flushed coalescing groups by flush cause.",
            )
            for cause in ("full", "window", "close")
        }
        self._m_width = self.registry.histogram(
            "scheduler_batch_width",
            buckets=_WIDTH_BUCKETS,
            help_text="Requests per flushed coalescing group.",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="repro-coalesce-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # -- lifecycle -------------------------------------------------------
    def __enter__(self) -> "RequestScheduler":
        if self._closed:
            raise DeviceError(
                "RequestScheduler is closed; create a new instance"
            )
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Flush every pending request and stop the dispatcher (idempotent).

        Requests already admitted are served (their batches flush with
        cause ``"close"``); new ``submit`` calls raise
        :class:`~repro.errors.DeviceError`.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._dispatcher.join()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` (or ``__exit__``) has run."""
        return self._closed

    # -- submission ------------------------------------------------------
    def submit(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> ScheduledResult:
        """Join a matrix's coalescing queue; block until a flush serves it.

        Returns this request's :class:`ScheduledResult`.  Raises
        :class:`~repro.errors.QueueFullError` when an admission bound
        is hit (the error names the tenant when the per-tenant bound
        tripped), and re-raises the batched executor's exception when
        the batch's flush failed (every member of a failed batch sees
        the same exception).
        """
        x = check_spmv_operand(matrix.ncols, x)
        # Snapshot this thread's trace before queueing: the batch may
        # flush on any member's thread (or the dispatcher's), and the
        # fan-in dispatch trace must link back to every member request.
        member_ctx = capture_context()
        to_flush: Optional[_Batch] = None
        with self._cond:
            if self._closed:
                raise DeviceError(
                    "RequestScheduler used after close(); "
                    "create a new instance"
                )
            if self._pending >= self.policy.max_queue:
                self._rejected += 1
                self._m_requests["rejected"].inc()
                raise QueueFullError(
                    f"coalescing queue full "
                    f"({self._pending}/{self.policy.max_queue} pending); "
                    f"shed load or retry later"
                )
            bound = self.policy.max_queue_per_tenant
            tenant_pending = self._tenant_pending.get(tenant, 0)
            if bound is not None and tenant_pending >= bound:
                self._rejected += 1
                self._rejected_tenants[tenant] = (
                    self._rejected_tenants.get(tenant, 0) + 1
                )
                self._m_requests["rejected"].inc()
                raise QueueFullError(
                    f"coalescing queue full for tenant {tenant!r} "
                    f"({tenant_pending}/{bound} pending); "
                    f"shed load or retry later",
                    tenant=tenant,
                )
            key = _coalesce_key(matrix, self._fingerprint)
            keyq = self._queues.get(key)
            if keyq is None:
                keyq = _KeyQueue(matrix)
                self._queues[key] = keyq
                self._cond.notify_all()  # dispatcher: new deadline to watch
            member = _Member(
                tenant, x, next(self._seq),
                monotonic() + self.policy.max_wait_seconds,
            )
            if member_ctx is not None and member_ctx.span_id is not None:
                member.trace_ref = (member_ctx.trace_id, member_ctx.span_id)
                member.recorder = member_ctx.recorder
            keyq.members.append(member)
            self._pending += 1
            self._tenant_pending[tenant] = tenant_pending + 1
            self._submitted += 1
            self._m_requests["accepted"].inc()
            if len(keyq.members) >= self.policy.max_batch:
                # The thread that fills a batch dispatches it inline --
                # no handoff latency on the common full-batch path.
                to_flush = self._take_batch_locked(key, keyq, "full")
        if to_flush is not None:
            self._flush(to_flush)
        if member_ctx is not None:
            with span("scheduler.wait", self.registry,
                      attrs={"tenant": tenant}):
                self._await_member(member)
        else:
            self._await_member(member)
        batch = member.batch
        assert batch is not None
        if batch.error is not None:
            raise batch.error
        return ScheduledResult(
            batch=batch.result,
            column=member.column,
            width=len(batch.members),
            cause=batch.cause,
            dispatch_trace_id=batch.dispatch_trace_id,
        )

    def _await_member(self, member: _Member) -> None:
        """Block until the member's batch has flushed.

        Two phases: wait (on the scheduler condition) until some batch
        selection claimed this member -- under fairness that is not
        necessarily the batch whose fill this thread triggered -- then
        wait on that batch's completion event.
        """
        with self._cond:
            self._cond.wait_for(lambda: member.batch is not None)
        member.batch.done.wait()

    # -- batch selection -------------------------------------------------
    def _take_batch_locked(
        self, key: Tuple[Any, bytes], keyq: _KeyQueue, cause: str
    ) -> _Batch:
        """Select up to ``max_batch`` members from a key's queue.

        Called with the lock held.  Composition: pure FIFO, unless the
        policy asks for tenant fairness -- then slots are round-robin
        across tenants with pending demand (FIFO within a tenant), so a
        hot tenant's backlog cannot crowd siblings out of the batch.
        Selected members leave the queue (and the pending accounting);
        the rest keep their deadlines and ride a later batch.
        """
        width = min(self.policy.max_batch, len(keyq.members))
        if self.policy.fair:
            demands: Dict[str, int] = {}
            for m in keyq.members:
                demands[m.tenant] = demands.get(m.tenant, 0) + 1
            alloc = fair_allocation(demands, width, start=self._rotation)
            self._rotation += 1
            remaining = dict(alloc)
            selected: List[_Member] = []
            rest: List[_Member] = []
            for m in keyq.members:
                if remaining.get(m.tenant, 0) > 0:
                    remaining[m.tenant] -= 1
                    selected.append(m)
                else:
                    rest.append(m)
            keyq.members = rest
        else:
            selected = keyq.members[:width]
            keyq.members = keyq.members[width:]
        if not keyq.members:
            del self._queues[key]
        else:
            # Leftovers become the new queue head: the dispatcher must
            # re-examine their (already old) deadlines promptly.
            self._cond.notify_all()
        batch = _Batch(keyq.matrix, selected, cause)
        for column, m in enumerate(selected):
            m.column = column
            m.batch = batch
            self._pending -= 1
            left = self._tenant_pending.get(m.tenant, 1) - 1
            if left:
                self._tenant_pending[m.tenant] = left
            else:
                self._tenant_pending.pop(m.tenant, None)
        # Waiters in _await_member watch for their member's batch.
        self._cond.notify_all()
        return batch

    # -- flushing --------------------------------------------------------
    def _flush(self, batch: _Batch) -> None:
        """Dispatch one batch (lock NOT held) and wake its waiters."""
        width = len(batch.members)
        try:
            X = np.stack([m.x for m in batch.members], axis=1)
            batch.result = self._dispatch(batch, X)
        except BaseException as exc:
            batch.error = exc
        with self._cond:
            self._batches += 1
            self._coalesced_rhs += width
            self._max_width = max(self._max_width, width)
            self._flushes[batch.cause] = self._flushes.get(batch.cause, 0) + 1
        self._m_batches[batch.cause].inc()
        self._m_width.observe(width)
        batch.done.set()

    def _dispatch(self, batch: _Batch, X: np.ndarray) -> Any:
        """Execute one flushed batch, under a fan-in trace when traced.

        N member requests share this one dispatch, so no single member
        trace can own it: the dispatch gets its *own* trace whose root
        span links to every member's request span.  Activation swaps in
        a fresh span stack -- the flush may run inline on a member's
        thread, mid-way through that member's own ``serve.request``
        span, and must not nest under it.
        """
        refs = [m.trace_ref for m in batch.members if m.trace_ref is not None]
        recorder = next(
            (m.recorder for m in batch.members if m.recorder is not None),
            None,
        )
        if not refs or recorder is None:
            return self._execute(batch.matrix, X)
        links = tuple(refs)
        ctx = TraceContext.root(recorder, links=links)
        batch.dispatch_trace_id = ctx.trace_id
        with activate_trace(ctx):
            with span("scheduler.dispatch", self.registry,
                      attrs={"width": len(batch.members),
                             "cause": batch.cause},
                      links=links):
                return self._execute(batch.matrix, X)

    def _dispatch_loop(self) -> None:
        """Dispatcher thread: flush batches whose wait window expired."""
        while True:
            expired: List[_Batch] = []
            closing = False
            with self._cond:
                now = monotonic()
                for key, keyq in list(self._queues.items()):
                    if self._closed or (keyq.members
                                        and now >= keyq.members[0].deadline):
                        expired.append(self._take_batch_locked(
                            key, keyq, "close" if self._closed else "window"
                        ))
                if not expired:
                    if self._closed:
                        closing = True
                    else:
                        timeout = min(
                            (kq.members[0].deadline - now
                             for kq in self._queues.values() if kq.members),
                            default=None,
                        )
                        self._cond.wait(
                            timeout=max(timeout, 0.0)
                            if timeout is not None else None
                        )
            for batch in expired:
                self._flush(batch)
            if closing:
                return

    # -- observability ---------------------------------------------------
    def stats(self) -> SchedulerStats:
        """Immutable snapshot of the coalescing accounting."""
        with self._cond:
            return SchedulerStats(
                submitted=self._submitted,
                rejected=self._rejected,
                batches=self._batches,
                coalesced_rhs=self._coalesced_rhs,
                max_width=self._max_width,
                flushes=dict(self._flushes),
                rejected_tenants=dict(self._rejected_tenants),
            )
