"""Request coalescing: concurrent same-matrix SpMVs become one SpMM.

Iterative solvers and replicated model serving produce many *concurrent*
SpMV requests against the same matrix.  Executing them one by one pays
the per-dispatch overhead (and the matrix traffic) once per vector; the
multi-RHS path (:func:`~repro.serve.batch.run_plan_spmm`) pays it once
per *batch* -- the paper's conclusion motivates exactly this
multiple-vector extension.  The :class:`RequestScheduler` sits in front
of a server and converts concurrency into batch width:

- requests for the same matrix (same structural fingerprint *and* the
  same values -- the fingerprint deliberately ignores values, so
  coalescing on it alone would compute with the wrong matrix) join an
  open *group*;
- a group flushes when it reaches ``max_batch`` width (the filling
  thread dispatches it inline), when its ``max_wait_seconds`` window
  expires (a background dispatcher thread watches deadlines), or when
  the scheduler closes;
- one flush executes ``A @ [x_1 .. x_k]`` and every waiter receives its
  own column -- bit-identical to a sequential ``submit``, because the
  batched kernels compute each column independently.

Admission control: at most ``max_queue`` requests may be waiting for a
flush; one more raises :class:`~repro.errors.QueueFullError` instead of
buffering unboundedly (backpressure belongs at the boundary, not in an
ever-growing queue).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DeviceError, QueueFullError
from repro.formats.csr import CSRMatrix
from repro.observe.registry import MetricsRegistry, get_registry
from repro.observe.spans import activate_trace, span
from repro.serve.fingerprint import fingerprint_matrix
from repro.trace.context import TraceContext, capture_context
from repro.utils.validation import check_spmv_operand

__all__ = [
    "CoalescePolicy",
    "ScheduledResult",
    "SchedulerStats",
    "RequestScheduler",
]

#: Signature of the batched executor behind the scheduler: takes the
#: matrix and a ``(ncols, k)`` RHS block, returns the batch outcome
#: (e.g. a :class:`~repro.serve.server.SubmitResult` with ``y`` of
#: shape ``(nrows, k)``).
BatchExecute = Callable[[CSRMatrix, np.ndarray], Any]

#: Batch-width histogram buckets (powers of two up to typical widths).
_WIDTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(frozen=True)
class CoalescePolicy:
    """Bounds on the coalescing behaviour.

    Parameters
    ----------
    max_batch:
        Flush a group as soon as it holds this many requests.
    max_wait_seconds:
        Longest a request waits for siblings before its group flushes
        anyway -- the latency the first request in a group pays to buy
        batching.  ``0`` disables waiting (every request dispatches
        immediately at width 1).
    max_queue:
        Admission bound: most requests allowed to be waiting for a
        flush at once; one more raises
        :class:`~repro.errors.QueueFullError`.
    """

    max_batch: int = 8
    max_wait_seconds: float = 0.005
    max_queue: int = 256

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be > 0, got {self.max_batch}")
        if self.max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds must be >= 0, got {self.max_wait_seconds}"
            )
        if self.max_queue <= 0:
            raise ValueError(f"max_queue must be > 0, got {self.max_queue}")


@dataclass(frozen=True)
class ScheduledResult:
    """What one coalesced ``submit`` receives back.

    ``batch`` is the *shared* outcome of the whole flushed group (every
    member of the group receives the same object); ``column`` is this
    request's column inside it.
    """

    #: The batched executor's return value for the whole group.
    batch: Any
    #: This request's column index within the batch.
    column: int
    #: How many requests the group held when it flushed.
    width: int
    #: Why the group flushed: ``"full"``, ``"window"`` or ``"close"``.
    cause: str
    #: Trace id of the shared dispatch trace (the fan-in trace linking
    #: every member request), when any member was traced; else ``None``.
    dispatch_trace_id: Optional[str] = None


@dataclass(frozen=True)
class SchedulerStats:
    """Point-in-time snapshot of the scheduler's accounting."""

    #: Requests admitted (eventually served by some flush).
    submitted: int
    #: Requests rejected with :class:`QueueFullError`.
    rejected: int
    #: Groups flushed (each is one batched dispatch).
    batches: int
    #: Requests served across all flushed groups.
    coalesced_rhs: int
    #: Widest group flushed so far.
    max_width: int
    #: Flush counts by cause (``full`` / ``window`` / ``close``).
    flushes: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_width(self) -> float:
        """Average requests per flushed group (1.0 = no coalescing won)."""
        return self.coalesced_rhs / self.batches if self.batches else 0.0

    def describe(self) -> str:
        """Readable one-per-line summary (CLI / logs)."""
        causes = ", ".join(
            f"{cause}={count}" for cause, count in sorted(self.flushes.items())
        ) or "none"
        return "\n".join([
            f"requests           : {self.submitted} admitted / "
            f"{self.rejected} rejected",
            f"batches            : {self.batches} "
            f"(mean width {self.mean_width:.2f}, max {self.max_width})",
            f"flush causes       : {causes}",
        ])


class _Group:
    """One open coalescing group: same matrix, accumulating columns."""

    __slots__ = ("matrix", "xs", "deadline", "done", "result", "error",
                 "cause", "member_refs", "recorder", "dispatch_trace_id")

    def __init__(self, matrix: CSRMatrix, deadline: float):
        self.matrix = matrix
        self.xs: List[np.ndarray] = []
        self.deadline = deadline
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.cause = ""
        #: ``(trace_id, span_id)`` of each traced member's request span;
        #: the flush's fan-in dispatch trace links back to all of them.
        self.member_refs: List[Tuple[str, str]] = []
        #: The traced members' recorder (they share the server's).
        self.recorder: Any = None
        self.dispatch_trace_id: Optional[str] = None


def _coalesce_key(
    matrix: CSRMatrix, fingerprint=fingerprint_matrix
) -> Tuple[Any, bytes]:
    """Identity under which requests may share one dispatch.

    The structural fingerprint ignores values by design (values change
    every iteration in solver traffic while the *plan* stays valid), so
    it alone is not a safe coalescing key: two matrices with one pattern
    but different values must not share a dispatch.  Pair it with a
    digest of the value array -- always computed fresh (never memoised):
    values legitimately mutate in place between submits.
    """
    digest = hashlib.blake2b(
        np.ascontiguousarray(matrix.val).tobytes(), digest_size=16
    ).digest()
    return fingerprint(matrix), digest


class RequestScheduler:
    """Admission-controlled coalescing queue in front of a batch executor.

    Parameters
    ----------
    execute:
        The batched path to dispatch flushed groups through -- for the
        server integration, a bound ``submit_batch``.  Called with
        ``(matrix, X)`` where ``X`` stacks the group's vectors as
        columns.  Must be thread-safe (flushes can run concurrently on
        the filling thread and the dispatcher thread).
    policy:
        Batch-width / wait-window / admission bounds.
    registry:
        Metrics registry for ``scheduler_*`` instruments.
    """

    def __init__(
        self,
        execute: BatchExecute,
        policy: CoalescePolicy = CoalescePolicy(),
        *,
        registry: Optional[MetricsRegistry] = None,
        fingerprint=None,
    ):
        self._execute = execute
        # Structural-fingerprint hook: the server injects its identity
        # cache so repeated same-object submits skip hashing here too.
        self._fingerprint = (
            fingerprint if fingerprint is not None else fingerprint_matrix
        )
        self.policy = policy
        self.registry = get_registry() if registry is None else registry
        self._cond = threading.Condition()
        self._open: Dict[Tuple[Any, bytes], _Group] = {}
        self._pending = 0
        self._closed = False
        self._submitted = 0
        self._rejected = 0
        self._batches = 0
        self._coalesced_rhs = 0
        self._max_width = 0
        self._flushes: Dict[str, int] = {}
        self._m_requests = {
            outcome: self.registry.counter(
                "scheduler_requests_total", {"outcome": outcome},
                help_text="Coalescing-scheduler admissions by outcome.",
            )
            for outcome in ("accepted", "rejected")
        }
        self._m_batches = {
            cause: self.registry.counter(
                "scheduler_batches_total", {"cause": cause},
                help_text="Flushed coalescing groups by flush cause.",
            )
            for cause in ("full", "window", "close")
        }
        self._m_width = self.registry.histogram(
            "scheduler_batch_width",
            buckets=_WIDTH_BUCKETS,
            help_text="Requests per flushed coalescing group.",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="repro-coalesce-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # -- lifecycle -------------------------------------------------------
    def __enter__(self) -> "RequestScheduler":
        if self._closed:
            raise DeviceError(
                "RequestScheduler is closed; create a new instance"
            )
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Flush every open group and stop the dispatcher (idempotent).

        Requests already admitted are served (their groups flush with
        cause ``"close"``); new ``submit`` calls raise
        :class:`~repro.errors.DeviceError`.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._dispatcher.join()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` (or ``__exit__``) has run."""
        return self._closed

    # -- submission ------------------------------------------------------
    def submit(self, matrix: CSRMatrix, x: np.ndarray) -> ScheduledResult:
        """Join (or open) a coalescing group; block until it flushes.

        Returns this request's :class:`ScheduledResult`.  Raises
        :class:`~repro.errors.QueueFullError` when the admission bound
        is hit, and re-raises the batched executor's exception when the
        group's flush failed (every member of a failed group sees the
        same exception).
        """
        x = check_spmv_operand(matrix.ncols, x)
        # Snapshot this thread's trace before queueing: the group may
        # flush on any member's thread (or the dispatcher's), and the
        # fan-in dispatch trace must link back to every member request.
        member_ctx = capture_context()
        to_flush: Optional[_Group] = None
        with self._cond:
            if self._closed:
                raise DeviceError(
                    "RequestScheduler used after close(); "
                    "create a new instance"
                )
            if self._pending >= self.policy.max_queue:
                self._rejected += 1
                self._m_requests["rejected"].inc()
                raise QueueFullError(
                    f"coalescing queue full "
                    f"({self._pending}/{self.policy.max_queue} pending); "
                    f"shed load or retry later"
                )
            key = _coalesce_key(matrix, self._fingerprint)
            group = self._open.get(key)
            if group is None:
                group = _Group(
                    matrix, monotonic() + self.policy.max_wait_seconds
                )
                self._open[key] = group
                self._cond.notify_all()  # dispatcher: new deadline to watch
            column = len(group.xs)
            group.xs.append(x)
            if member_ctx is not None and member_ctx.span_id is not None:
                group.member_refs.append(
                    (member_ctx.trace_id, member_ctx.span_id)
                )
                group.recorder = member_ctx.recorder
            self._pending += 1
            self._submitted += 1
            self._m_requests["accepted"].inc()
            if len(group.xs) >= self.policy.max_batch:
                # The thread that fills a group dispatches it inline --
                # no handoff latency on the common full-batch path.
                del self._open[key]
                to_flush = group
        if to_flush is not None:
            self._flush(to_flush, "full")
        if member_ctx is not None:
            with span("scheduler.wait", self.registry,
                      attrs={"column": column}):
                group.done.wait()
        else:
            group.done.wait()
        if group.error is not None:
            raise group.error
        return ScheduledResult(
            batch=group.result,
            column=column,
            width=len(group.xs),
            cause=group.cause,
            dispatch_trace_id=group.dispatch_trace_id,
        )

    # -- flushing --------------------------------------------------------
    def _flush(self, group: _Group, cause: str) -> None:
        """Dispatch one group (lock NOT held) and wake its waiters."""
        width = len(group.xs)
        group.cause = cause
        try:
            X = np.stack(group.xs, axis=1)
            group.result = self._dispatch(group, X, cause)
        except BaseException as exc:
            group.error = exc
        with self._cond:
            self._pending -= width
            self._batches += 1
            self._coalesced_rhs += width
            self._max_width = max(self._max_width, width)
            self._flushes[cause] = self._flushes.get(cause, 0) + 1
        self._m_batches[cause].inc()
        self._m_width.observe(width)
        group.done.set()

    def _dispatch(self, group: _Group, X: np.ndarray, cause: str) -> Any:
        """Execute one flushed group, under a fan-in trace when traced.

        N member requests share this one dispatch, so no single member
        trace can own it: the dispatch gets its *own* trace whose root
        span links to every member's request span (``member_refs``).
        Activation swaps in a fresh span stack -- the flush may run
        inline on a member's thread, mid-way through that member's own
        ``serve.request`` span, and must not nest under it.
        """
        if not group.member_refs or group.recorder is None:
            return self._execute(group.matrix, X)
        links = tuple(group.member_refs)
        ctx = TraceContext.root(group.recorder, links=links)
        group.dispatch_trace_id = ctx.trace_id
        with activate_trace(ctx):
            with span("scheduler.dispatch", self.registry,
                      attrs={"width": len(group.xs), "cause": cause},
                      links=links):
                return self._execute(group.matrix, X)

    def _dispatch_loop(self) -> None:
        """Dispatcher thread: flush groups whose wait window expired."""
        while True:
            expired: List[_Group] = []
            closing = False
            with self._cond:
                now = monotonic()
                for key, group in list(self._open.items()):
                    if self._closed or now >= group.deadline:
                        del self._open[key]
                        expired.append(group)
                if not expired:
                    if self._closed:
                        closing = True
                    else:
                        timeout = min(
                            (g.deadline - now for g in self._open.values()),
                            default=None,
                        )
                        self._cond.wait(
                            timeout=max(timeout, 0.0)
                            if timeout is not None else None
                        )
            for group in expired:
                self._flush(group, "close" if self._closed else "window")
            if closing:
                return

    # -- observability ---------------------------------------------------
    def stats(self) -> SchedulerStats:
        """Immutable snapshot of the coalescing accounting."""
        with self._cond:
            return SchedulerStats(
                submitted=self._submitted,
                rejected=self._rejected,
                batches=self._batches,
                coalesced_rhs=self._coalesced_rhs,
                max_width=self._max_width,
                flushes=dict(self._flushes),
            )
