"""Sharded execution: per-shard plans on a pool of concurrent devices.

One level above the paper's binning: the :class:`ShardedExecutor`
partitions a matrix into row-shards (:mod:`repro.shard.partition`),
plans *each shard independently* (a long-tail shard can pick
``kernel-vector`` while the banded bulk gets ``kernel-subvector4``),
executes the per-shard plans concurrently -- one simulated device per
shard slot, driven by a thread pool -- and scatter-gathers the output
vector by row range.

Accounting follows the parallel-hardware model: the executor's
``seconds`` is the *makespan* (the slowest shard's simulated seconds),
because the shards run on independent devices; the per-shard times and
their imbalance ratio (max/mean, the metric the paper's load-balancing
story is about) are surfaced alongside.  The host-side gather is real
wall time and is recorded as a metric, not added to simulated time.

Resilience is per shard: with a
:class:`~repro.resilient.ResiliencePolicy`, a failing shard retries,
trips its own breaker and degrades to the serial reference path on the
unwrapped device -- without poisoning its sibling shards, which complete
normally.

Observability: ``shard.partition`` / ``shard.plan`` / ``shard.execute``
/ ``shard.gather`` spans plus ``shard_*`` metrics (shard count,
imbalance-ratio histogram, gather-time histogram, degraded-shard
counter) land in the metrics registry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.binning.single import SingleBinning
from repro.core.plan import ExecutionPlan
from repro.device.executor import SimulatedDevice, SpMMResult, SpMVResult
from repro.errors import DeviceError
from repro.formats.csr import CSRMatrix
from repro.observe.registry import MetricsRegistry, get_registry
from repro.observe.spans import activate_trace, span, trace_event
from repro.trace.context import TraceContext, capture_context
from repro.resilient.executor import ResiliencePolicy, ResilientExecutor
from repro.resilient.faults import unwrap_device
from repro.serve.batch import run_plan_spmm, run_plan_spmv
from repro.serve.fingerprint import (
    FingerprintCache,
    MatrixFingerprint,
    fingerprint_matrix,
)
from repro.serve.plan_cache import CacheStats, PlanCache
from repro.shard.backend import (
    ExecutionBackend,
    InlineShardBackend,
    ProcessShardBackend,
    ThreadShardBackend,
    WorkerCrashError,
)
from repro.shard.partition import (
    PartitionStrategy,
    Shard,
    ShardDescriptor,
    extract_row_block,
    make_shards,
)
from repro.utils.validation import check_spmm_operand, check_spmv_operand

__all__ = [
    "ShardingPolicy",
    "ShardSummary",
    "ShardedResult",
    "ShardExecutorStats",
    "ShardedExecutor",
]

#: Bound on cached (descriptors, plans) shard sets (process backend).
_SHARD_SET_CAPACITY = 32

#: Signature of anything that can produce a plan for one shard matrix.
Planner = Callable[[CSRMatrix], ExecutionPlan]

#: Imbalance-ratio histogram buckets (ratio = max/mean shard seconds;
#: 1.0 is perfect balance, >2 means one shard dominates the makespan).
_IMBALANCE_BUCKETS = (1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0)


@dataclass(frozen=True)
class ShardingPolicy:
    """How a matrix is sharded across workers.

    Parameters
    ----------
    n_shards:
        Requested shard count ``K``; the effective count can be smaller
        when the matrix has fewer rows (empty row ranges are dropped).
    strategy:
        ``ROWS`` for equal row counts, ``NNZ`` (default) for
        equal-non-zero balancing -- the same trade-off as the CPU
        executor's thread partitioning, one level up.
    max_workers:
        Thread-pool width executing shards; defaults to ``n_shards``.
    plan_cache_capacity:
        Bound on cached per-shard plans (keyed by shard fingerprint).
    backend:
        Where shard work runs -- ``ExecutionBackend.THREAD`` (default,
        the legacy pool; faithful simulation accounting, wall-clock
        GIL-bound), ``INLINE`` (sequential on the caller thread, the
        differential baseline) or ``PROCESS`` (a process pool over
        shared-memory CSR blocks -- the wall-clock path).  A string
        (``"process"``) is accepted and coerced.
    process_workers:
        Process-pool width (``PROCESS`` backend only); defaults to
        ``min(n_shards, os.cpu_count())``.
    """

    n_shards: int = 4
    strategy: PartitionStrategy = PartitionStrategy.NNZ
    max_workers: Optional[int] = None
    plan_cache_capacity: int = 256
    backend: ExecutionBackend = ExecutionBackend.THREAD
    process_workers: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "backend", ExecutionBackend.coerce(self.backend)
        )
        if self.n_shards <= 0:
            raise ValueError(f"n_shards must be > 0, got {self.n_shards}")
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError(
                f"max_workers must be > 0, got {self.max_workers}"
            )
        if self.plan_cache_capacity <= 0:
            raise ValueError(
                f"plan_cache_capacity must be > 0, "
                f"got {self.plan_cache_capacity}"
            )
        if self.process_workers is not None and self.process_workers <= 0:
            raise ValueError(
                f"process_workers must be > 0, got {self.process_workers}"
            )


@dataclass(frozen=True)
class ShardSummary:
    """Array-free view of one sharded execution (rides on SubmitResult)."""

    #: Effective shard count (after dropping empty row ranges).
    n_shards: int
    #: Simulated seconds per shard, in shard order.
    shard_seconds: Tuple[float, ...]
    #: max/mean of ``shard_seconds`` (1.0 = perfectly balanced).
    imbalance: float
    #: Sum of ``shard_seconds`` (the serial-equivalent simulated cost).
    total_shard_seconds: float
    #: Shard ids served by the degraded serial path.
    degraded_shards: Tuple[int, ...]
    #: Host wall seconds spent scattering shard outputs into place.
    gather_seconds: float


@dataclass(frozen=True)
class ShardedResult:
    """Outcome of one sharded SpMV/SpMM execution."""

    #: Result: shape ``(nrows,)`` for SpMV, ``(nrows, k)`` for SpMM.
    y: np.ndarray
    #: Simulated makespan: the slowest shard's seconds (shards run on
    #: independent devices concurrently).
    seconds: float
    #: Kernel launches summed across all shards.
    n_dispatches: int
    #: True when every shard's plan came from the plan cache.
    cache_hit: bool
    #: Tuned-plan attempts summed across shards (equals the shard count
    #: without resilience).
    attempts: int
    #: Right-hand sides served (1 for SpMV).
    n_rhs: int
    summary: ShardSummary

    @property
    def n_shards(self) -> int:
        """Effective shard count of this execution."""
        return self.summary.n_shards

    @property
    def imbalance(self) -> float:
        """max/mean shard simulated seconds (1.0 = perfect balance)."""
        return self.summary.imbalance

    @property
    def degraded_shards(self) -> Tuple[int, ...]:
        """Shard ids that fell back to the serial reference path."""
        return self.summary.degraded_shards


@dataclass(frozen=True)
class ShardExecutorStats:
    """Point-in-time snapshot of one executor's accounting."""

    #: ``run_spmv`` + ``run_spmm`` calls served.
    executions: int
    #: Shards executed across all calls.
    shards_executed: int
    #: Shards served by the degraded serial path.
    degraded_shards: int
    #: Worst imbalance ratio seen so far (0.0 before the first run).
    max_imbalance: float
    #: Per-shard plan-cache counters.
    cache: CacheStats

    def describe(self) -> str:
        """Readable one-per-line summary (CLI / logs)."""
        return "\n".join([
            f"executions         : {self.executions} "
            f"({self.shards_executed} shards, "
            f"{self.degraded_shards} degraded)",
            f"worst imbalance    : {self.max_imbalance:.2f}x (max/mean)",
            f"shard plan cache   : {self.cache.hits} hits / "
            f"{self.cache.misses} misses "
            f"(hit rate {self.cache.hit_rate:.1%})",
        ])


@dataclass(frozen=True)
class _ShardOutcome:
    """One shard's contribution, as produced by a worker thread."""

    shard: Shard
    result: Union[SpMVResult, SpMMResult]
    attempts: int
    degraded: bool


@dataclass(frozen=True)
class _ShardContribution:
    """Backend-neutral per-shard outcome (what the gather consumes)."""

    descriptor: ShardDescriptor
    y: np.ndarray
    seconds: float
    n_dispatches: int
    attempts: int
    degraded: bool


class ShardedExecutor:
    """Plan and execute row-shards concurrently, one device per shard.

    Parameters
    ----------
    policy:
        Shard count, balancing strategy, worker-pool width.
    planner:
        Per-shard planner (a fitted tuner's ``plan`` or the serve
        layer's heuristic); each shard's sub-matrix is planned as a
        matrix in its own right.  Defaults to
        :func:`~repro.serve.server.heuristic_planner`.
    device_factory:
        Builds one :class:`SimulatedDevice` per shard slot (workers
        must not share mutable device state with each other in general;
        the simulated device happens to be pure, but a chaos wrapper is
        not).  Defaults to fresh Kaveri devices on ``registry``.
    resilience:
        Optional per-shard resilience: retries + breaker + degradation
        to the serial path on the unwrapped device.  A failing shard
        degrades alone; its siblings complete normally.
    registry:
        Metrics registry for ``shard_*`` instruments and spans.
    """

    def __init__(
        self,
        policy: ShardingPolicy = ShardingPolicy(),
        *,
        planner: Optional[Planner] = None,
        device_factory: Optional[Callable[[], SimulatedDevice]] = None,
        resilience: Optional[ResiliencePolicy] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.policy = policy
        self.registry = get_registry() if registry is None else registry
        if planner is None:
            from repro.serve.server import heuristic_planner

            planner = heuristic_planner
        self._planner = planner
        factory = device_factory or (
            lambda: SimulatedDevice(registry=self.registry)
        )
        self.devices: Tuple[SimulatedDevice, ...] = tuple(
            factory() for _ in range(policy.n_shards)
        )
        self.cache = PlanCache(
            capacity=policy.plan_cache_capacity, registry=self.registry
        )
        self.resilience = resilience
        self._resilient = (
            ResilientExecutor(resilience, registry=self.registry)
            if resilience is not None else None
        )
        if policy.backend is ExecutionBackend.PROCESS:
            self._backend = ProcessShardBackend(
                n_workers=policy.process_workers,
                n_shards_hint=policy.n_shards,
                device_spec=self.devices[0].spec,
                registry=self.registry,
            )
        elif policy.backend is ExecutionBackend.INLINE:
            self._backend = InlineShardBackend()
        else:
            self._backend = ThreadShardBackend(
                policy.max_workers or policy.n_shards
            )
        self._fingerprints = FingerprintCache()
        # Process backend only: (descriptors, plans) per structural
        # digest, so a warm request skips partitioning and per-shard
        # hashing entirely.  Descriptors carry no arrays -- the current
        # request's values always come from the shared segment (or the
        # current matrix, on the degraded parent-side path).
        self._shard_sets: "OrderedDict[str, tuple]" = OrderedDict()
        # All backends: parent digest -> the per-shard plan-cache keys
        # its last run used, so invalidate(digest) can surgically drop
        # the matching shard plans without re-partitioning the matrix.
        self._shard_fps: "OrderedDict[str, tuple]" = OrderedDict()
        self._closed = False
        self._lock = threading.Lock()
        self._executions = 0
        self._shards_executed = 0
        self._degraded_shards = 0
        self._max_imbalance = 0.0
        self._m_executions = self.registry.counter(
            "shard_executions_total",
            help_text="Sharded run_spmv/run_spmm calls served.",
        )
        self._m_shards = self.registry.counter(
            "shard_shards_executed_total",
            help_text="Shards executed across all sharded calls.",
        )
        self._m_degraded = self.registry.counter(
            "shard_degraded_total",
            help_text="Shards served by the degraded serial path.",
        )
        self._m_count = self.registry.gauge(
            "shard_count",
            help_text="Effective shard count of the most recent "
                      "sharded execution.",
        )
        self._m_imbalance = self.registry.histogram(
            "shard_imbalance_ratio",
            buckets=_IMBALANCE_BUCKETS,
            help_text="max/mean per-shard simulated seconds per "
                      "execution (1.0 = perfectly balanced).",
        )
        self._m_gather = self.registry.histogram(
            "shard_gather_seconds",
            help_text="Host wall seconds scattering shard outputs "
                      "into the result.",
        )

    # -- lifecycle -------------------------------------------------------
    def __enter__(self) -> "ShardedExecutor":
        if self._closed:
            raise DeviceError(
                "ShardedExecutor is closed; create a new instance"
            )
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the execution backend down permanently (idempotent).

        For the thread backend this joins the worker pool; for the
        process backend it also unlinks every published shared-memory
        segment (leak-free teardown -- attaching one of its segment
        names afterwards raises ``FileNotFoundError``).  A closed
        executor raises :class:`~repro.errors.DeviceError` on further
        ``run_spmv``/``run_spmm`` calls -- use-after-close is a caller
        bug, mirroring :class:`~repro.device.cpu.CPUExecutor`.
        """
        self._backend.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        """True once :meth:`close` (or ``__exit__``) has run."""
        return self._closed

    @property
    def backend(self):
        """The live execution backend (kind, chaos hooks, restart count)."""
        return self._backend

    def _check_open(self) -> None:
        if self._closed:
            raise DeviceError(
                "ShardedExecutor used after close(); create a new instance"
            )

    # -- planning --------------------------------------------------------
    def _plan_shards(
        self, shards: List[Shard]
    ) -> Tuple[List[ExecutionPlan], List[MatrixFingerprint], bool]:
        """Plan every shard through the per-shard cache.

        Returns ``(plans, shard_fps, all_hit)``; ``all_hit`` is True
        when no shard needed a fresh planner run (repeated traffic for
        one parent pattern hits K cached shard plans).  The shard
        fingerprints are what :meth:`invalidate` needs later to drop
        exactly this parent's per-shard plan-cache entries.
        """
        plans: List[ExecutionPlan] = []
        fps: List[MatrixFingerprint] = []
        all_hit = True
        for shard in shards:
            fp = fingerprint_matrix(shard.matrix)
            plan, hit = self.cache.get_or_build(
                fp, lambda s=shard: self._planner(s.matrix)
            )
            plans.append(plan)
            fps.append(fp)
            all_hit &= hit
        return plans, fps, all_hit

    def _record_shard_fps(
        self, digest: str, fps: Sequence[MatrixFingerprint]
    ) -> None:
        """Remember which per-shard plan-cache keys a parent digest maps
        to, so :meth:`invalidate` can drop them without re-partitioning."""
        with self._lock:
            self._shard_fps[digest] = tuple(fps)
            while len(self._shard_fps) > _SHARD_SET_CAPACITY:
                self._shard_fps.popitem(last=False)

    # -- degraded path ---------------------------------------------------
    @staticmethod
    def _serial_plan(matrix: CSRMatrix) -> ExecutionPlan:
        """The always-correct degraded plan for one shard."""
        binning = SingleBinning().bin_rows(matrix)
        return ExecutionPlan(
            scheme=SingleBinning(),
            binning=binning,
            bin_kernels={b: "serial" for b, _ in binning.non_empty()},
            source="fallback",
        )

    # -- shard workers ---------------------------------------------------
    def _run_shard(
        self,
        index: int,
        shard: Shard,
        plan: ExecutionPlan,
        rhs: np.ndarray,
        *,
        batch: bool,
        max_rhs: Optional[int],
        trace_ctx: Optional[TraceContext] = None,
    ) -> _ShardOutcome:
        """Execute one shard on its own device (worker-thread body).

        ``trace_ctx`` is the submitting request's trace, captured on
        the submitting thread; activating it here parents this worker's
        spans to the request's ``shard.execute`` stage across the
        thread boundary.
        """
        if trace_ctx is not None:
            d = shard.descriptor
            with activate_trace(trace_ctx):
                with span("shard.worker", self.registry,
                          attrs={"shard": d.shard_id,
                                 "rows": d.row_hi - d.row_lo}):
                    return self._execute_shard(
                        index, shard, plan, rhs, batch=batch, max_rhs=max_rhs
                    )
        return self._execute_shard(
            index, shard, plan, rhs, batch=batch, max_rhs=max_rhs
        )

    def _execute_shard(
        self,
        index: int,
        shard: Shard,
        plan: ExecutionPlan,
        rhs: np.ndarray,
        *,
        batch: bool,
        max_rhs: Optional[int],
    ) -> _ShardOutcome:
        device = self.devices[index % len(self.devices)]

        def _tuned():
            if batch:
                return run_plan_spmm(
                    device, shard.matrix, rhs, plan, max_rhs=max_rhs
                )
            return run_plan_spmv(device, shard.matrix, rhs, plan)

        if self._resilient is None:
            return _ShardOutcome(
                shard=shard, result=_tuned(), attempts=1, degraded=False
            )

        fp = fingerprint_matrix(shard.matrix)

        def _fallback():
            serial = self._serial_plan(shard.matrix)
            clean = unwrap_device(device)
            if batch:
                return run_plan_spmm(
                    clean, shard.matrix, rhs, serial, max_rhs=max_rhs
                )
            return run_plan_spmv(clean, shard.matrix, rhs, serial)

        def _finite(res) -> bool:
            out = res.U if batch else res.u
            return bool(np.isfinite(out).all())

        result, outcome = self._resilient.execute(
            fp,
            _tuned,
            fallback=_fallback,
            validate=_finite,
            on_degrade=lambda cause: self.cache.invalidate(fp),
        )
        return _ShardOutcome(
            shard=shard,
            result=result,
            attempts=outcome.attempts,
            degraded=outcome.degraded,
        )

    # -- execution -------------------------------------------------------
    def run_spmv(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        *,
        fingerprint: Optional[MatrixFingerprint] = None,
    ) -> ShardedResult:
        """Sharded SpMV: partition, plan per shard, execute, gather.

        ``fingerprint`` lets a caller that already fingerprinted the
        matrix (the server) hand the identity down; the process backend
        keys its shared segments and shard-set cache by it.
        """
        x = check_spmv_operand(matrix.ncols, x)
        return self._run(matrix, x, batch=False, max_rhs=None,
                         fingerprint=fingerprint)

    def run_spmm(
        self,
        matrix: CSRMatrix,
        dense: np.ndarray,
        *,
        max_rhs: Optional[int] = None,
        fingerprint: Optional[MatrixFingerprint] = None,
    ) -> ShardedResult:
        """Sharded multi-RHS execution; each shard runs the whole block."""
        dense = check_spmm_operand(matrix.ncols, dense)
        return self._run(matrix, dense, batch=True, max_rhs=max_rhs,
                         fingerprint=fingerprint)

    def _run(
        self,
        matrix: CSRMatrix,
        rhs: np.ndarray,
        *,
        batch: bool,
        max_rhs: Optional[int],
        fingerprint: Optional[MatrixFingerprint] = None,
    ) -> ShardedResult:
        self._check_open()
        if isinstance(self._backend, ProcessShardBackend):
            return self._run_process(
                matrix, rhs, batch=batch, max_rhs=max_rhs,
                fingerprint=fingerprint,
            )
        with span("shard.partition", self.registry):
            shards = make_shards(
                matrix, self.policy.n_shards, self.policy.strategy
            )
        with span("shard.plan", self.registry):
            plans, fps, all_hit = self._plan_shards(shards)
        if fingerprint is not None:
            self._record_shard_fps(fingerprint.digest, fps)
        with span("shard.execute", self.registry):
            # Captured inside the stage span so worker spans parent to
            # it (not to the whole request) across the thread hop.
            ctx = capture_context()
            outcomes = self._backend.run_tasks([
                (lambda i=i, shard=shard, plan=plan: self._run_shard(
                    i, shard, plan, rhs,
                    batch=batch, max_rhs=max_rhs, trace_ctx=ctx,
                ))
                for i, (shard, plan) in enumerate(zip(shards, plans))
            ])
        contributions = [
            _ShardContribution(
                descriptor=o.shard.descriptor,
                y=o.result.U if batch else o.result.u,
                seconds=o.result.seconds,
                n_dispatches=o.result.n_dispatches,
                attempts=o.attempts,
                degraded=o.degraded,
            )
            for o in outcomes
        ]
        return self._finalize(
            matrix, contributions,
            batch=batch,
            n_rhs=rhs.shape[1] if batch else 1,
            all_hit=all_hit,
        )

    # -- process backend path --------------------------------------------
    def _shard_set_for(
        self, matrix: CSRMatrix, digest: str
    ) -> Tuple[Tuple[ShardDescriptor, ...], Tuple[ExecutionPlan, ...], bool]:
        """Descriptors + per-shard plans, cached per structural digest."""
        with self._lock:
            cached = self._shard_sets.get(digest)
            if cached is not None:
                self._shard_sets.move_to_end(digest)
                return cached[0], cached[1], True
        with span("shard.partition", self.registry):
            shards = make_shards(
                matrix, self.policy.n_shards, self.policy.strategy
            )
        with span("shard.plan", self.registry):
            plans, fps, _ = self._plan_shards(shards)
        self._record_shard_fps(digest, fps)
        descriptors = tuple(s.descriptor for s in shards)
        entry = (descriptors, tuple(plans))
        with self._lock:
            self._shard_sets[digest] = entry
            while len(self._shard_sets) > _SHARD_SET_CAPACITY:
                self._shard_sets.popitem(last=False)
        return descriptors, entry[1], False

    def _invalidate_shard_set(self, digest: str) -> None:
        """Degradation hook: full invalidation, shard plans included."""
        self.invalidate(digest)

    # -- invalidation ----------------------------------------------------
    def invalidate(self, digest: str) -> bool:
        """Drop every cached artefact derived from this parent digest.

        Three layers go stale together and must be dropped together:
        the (descriptors, plans) shard-set entry, the per-shard
        plan-cache entries it referenced, and the backend's own state
        (the process backend's pre-pickled spec blobs plus a generation
        bump that forces worker-side bound plans to rebind on the next
        dispatch).  Returns True when any cached state was dropped.
        """
        with self._lock:
            dropped = self._shard_sets.pop(digest, None) is not None
            fps = self._shard_fps.pop(digest, ())
        for fp in fps:
            dropped |= self.cache.invalidate(fp)
        self._backend.invalidate(digest)
        return dropped

    def clear_caches(self) -> None:
        """Drop every cached plan, shard set and fingerprint (all digests).

        The counters survive, mirroring :meth:`PlanCache.clear`; the
        backend invalidates every digest it has served so worker-side
        bound plans rebind on the next dispatch.
        """
        with self._lock:
            self._shard_sets.clear()
            self._shard_fps.clear()
        self.cache.clear()
        self._fingerprints.clear()
        self._backend.invalidate_all()

    def _run_process(
        self,
        matrix: CSRMatrix,
        rhs: np.ndarray,
        *,
        batch: bool,
        max_rhs: Optional[int],
        fingerprint: Optional[MatrixFingerprint],
    ) -> ShardedResult:
        backend: ProcessShardBackend = self._backend
        fp = (fingerprint if fingerprint is not None
              else self._fingerprints.fingerprint(matrix))
        descriptors, plans, all_hit = self._shard_set_for(matrix, fp.digest)
        with span("shard.execute", self.registry):
            ctx = capture_context()
            trace_ref = (
                (ctx.trace_id, ctx.span_id) if ctx is not None
                else (None, None)
            )
            try:
                reports = backend.execute(
                    matrix, fp.digest, descriptors, plans, rhs,
                    batch=batch, max_rhs=max_rhs, trace_ref=trace_ref,
                )
            except WorkerCrashError:
                # Dead worker == shard fault: every shard of the broken
                # dispatch re-drives through the resilience path (remote
                # retry on the healed pool, serial parent-side fallback).
                contributions = [
                    self._process_shard_fault(
                        matrix, fp, d, plan, rhs,
                        batch=batch, max_rhs=max_rhs, trace_ref=trace_ref,
                    )
                    for d, plan in zip(descriptors, plans)
                ]
            else:
                if ctx is not None:
                    for r in reports:
                        trace_event(
                            "shard.worker", r.wall_start, r.wall_end,
                            attrs={"shard": r.shard_id,
                                   "rows": r.row_hi - r.row_lo,
                                   "backend": "process",
                                   "pid": r.pid},
                        )
                contributions = [
                    _ShardContribution(
                        descriptor=d,
                        y=r.y,
                        seconds=r.seconds,
                        n_dispatches=r.n_dispatches,
                        attempts=1,
                        degraded=False,
                    )
                    for d, r in zip(descriptors, reports)
                ]
        return self._finalize(
            matrix, contributions,
            batch=batch,
            n_rhs=rhs.shape[1] if batch else 1,
            all_hit=all_hit,
        )

    def _process_shard_fault(
        self,
        matrix: CSRMatrix,
        fp: MatrixFingerprint,
        descriptor: ShardDescriptor,
        plan: ExecutionPlan,
        rhs: np.ndarray,
        *,
        batch: bool,
        max_rhs: Optional[int],
        trace_ref,
    ) -> _ShardContribution:
        """Re-drive one shard after a worker death.

        The *attempt* is a remote single-shard execution on the healed
        pool -- a transient crash heals with a correct result and no
        degradation.  The *fallback* is the parent-side serial
        reference path over a fresh row-block of the current matrix.
        Both normalise to ``(y, seconds, n_dispatches)`` so the
        resilience validator sees one shape.
        """
        backend: ProcessShardBackend = self._backend

        def _attempt():
            r = backend.execute_single(
                matrix, fp.digest, descriptor, plan, rhs,
                batch=batch, max_rhs=max_rhs, trace_ref=trace_ref,
            )
            return (r.y, r.seconds, r.n_dispatches)

        def _fallback():
            sub = extract_row_block(
                matrix, descriptor.row_lo, descriptor.row_hi
            )
            serial = self._serial_plan(sub)
            clean = unwrap_device(
                self.devices[descriptor.shard_id % len(self.devices)]
            )
            if batch:
                res = run_plan_spmm(clean, sub, rhs, serial,
                                    max_rhs=max_rhs)
                return (res.U, res.seconds, res.n_dispatches)
            res = run_plan_spmv(clean, sub, rhs, serial)
            return (res.u, res.seconds, res.n_dispatches)

        if self._resilient is None:
            try:
                y, seconds, n_disp = _attempt()
                return _ShardContribution(
                    descriptor, y=y, seconds=seconds,
                    n_dispatches=n_disp, attempts=1, degraded=False,
                )
            except WorkerCrashError:
                y, seconds, n_disp = _fallback()
                return _ShardContribution(
                    descriptor, y=y, seconds=seconds,
                    n_dispatches=n_disp, attempts=1, degraded=True,
                )

        key = (fp.digest, descriptor.shard_id)
        result, outcome = self._resilient.execute(
            key,
            _attempt,
            fallback=_fallback,
            validate=lambda t: bool(np.isfinite(t[0]).all()),
            on_degrade=lambda cause: self._invalidate_shard_set(fp.digest),
        )
        y, seconds, n_disp = result
        return _ShardContribution(
            descriptor, y=y, seconds=seconds, n_dispatches=n_disp,
            attempts=outcome.attempts, degraded=outcome.degraded,
        )

    # -- gather + accounting ---------------------------------------------
    def _finalize(
        self,
        matrix: CSRMatrix,
        contributions: Sequence[_ShardContribution],
        *,
        batch: bool,
        n_rhs: int,
        all_hit: bool,
    ) -> ShardedResult:
        with span("shard.gather", self.registry) as sp_gather:
            shape = (matrix.nrows, n_rhs) if batch else (matrix.nrows,)
            y = np.zeros(shape)
            for c in contributions:
                y[c.descriptor.row_lo : c.descriptor.row_hi] = c.y
        shard_seconds = tuple(c.seconds for c in contributions)
        makespan = max(shard_seconds, default=0.0)
        mean = sum(shard_seconds) / len(shard_seconds) if shard_seconds else 0.0
        imbalance = makespan / mean if mean > 0.0 else 1.0
        degraded = tuple(
            c.descriptor.shard_id for c in contributions if c.degraded
        )
        summary = ShardSummary(
            n_shards=len(contributions),
            shard_seconds=shard_seconds,
            imbalance=imbalance,
            total_shard_seconds=float(sum(shard_seconds)),
            degraded_shards=degraded,
            gather_seconds=sp_gather.seconds,
        )
        self._account(summary)
        return ShardedResult(
            y=y,
            seconds=float(makespan),
            n_dispatches=sum(c.n_dispatches for c in contributions),
            cache_hit=all_hit,
            attempts=sum(c.attempts for c in contributions),
            n_rhs=n_rhs,
            summary=summary,
        )

    def _account(self, summary: ShardSummary) -> None:
        with self._lock:
            self._executions += 1
            self._shards_executed += summary.n_shards
            self._degraded_shards += len(summary.degraded_shards)
            self._max_imbalance = max(self._max_imbalance, summary.imbalance)
        self._m_executions.inc()
        self._m_shards.inc(summary.n_shards)
        if summary.degraded_shards:
            self._m_degraded.inc(len(summary.degraded_shards))
        self._m_count.set(summary.n_shards)
        self._m_imbalance.observe(summary.imbalance)
        self._m_gather.observe(summary.gather_seconds)

    # -- observability ---------------------------------------------------
    def resilience_stats(self):
        """Per-shard resilience accounting, or ``None`` without a policy.

        Returns a :class:`~repro.resilient.executor.ResilienceStats`;
        the server surfaces it in ``ServerStats.resilience`` so the
        sharded and unsharded paths report through the same field.
        """
        return (
            self._resilient.stats() if self._resilient is not None else None
        )

    def stats(self) -> ShardExecutorStats:
        """Immutable snapshot of the sharding accounting."""
        with self._lock:
            return ShardExecutorStats(
                executions=self._executions,
                shards_executed=self._shards_executed,
                degraded_shards=self._degraded_shards,
                max_imbalance=self._max_imbalance,
                cache=self.cache.stats(),
            )
