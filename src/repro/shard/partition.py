"""Row-sharding: split one CSR matrix into independently-plannable pieces.

The paper balances work *inside* one dispatch by binning rows; this
module applies the same nnz-balancing idea one level up, cutting the row
space into ``K`` contiguous shards that workers can execute
concurrently.  Two pieces live here:

- :func:`row_partition` -- the chunk-boundary computation promoted out
  of :mod:`repro.device.cpu` (which re-exports it for compatibility).
  ``ROWS`` splits rows evenly, ``NNZ`` places boundaries so every chunk
  holds approximately equal non-zeros (binary search on ``rowptr``, the
  CPU analogue of CSR-Adaptive's row blocks);
- :class:`Shard` / :func:`make_shards` -- materialised shard
  descriptors with a zero-copy-where-possible sub-CSR view and the
  per-shard Table I feature vector, so the tuner can plan *each shard
  independently* (a long-tail shard can get ``kernel-vector`` while the
  banded bulk gets ``kernel-subvector4``).

Sub-matrices keep the parent's column count, so the full right-hand
side vector passes through unchanged and the shard results scatter back
by row range.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.features.extract import MatrixFeatures, extract_features
from repro.formats.csr import CSRMatrix

__all__ = [
    "PartitionStrategy",
    "row_partition",
    "ShardDescriptor",
    "Shard",
    "extract_row_block",
    "make_shards",
]


class PartitionStrategy(enum.Enum):
    """How a row space is split across workers (threads or shards)."""

    ROWS = "rows"
    NNZ = "nnz"


def row_partition(
    matrix: CSRMatrix, n_chunks: int, strategy: PartitionStrategy
) -> np.ndarray:
    """Chunk boundaries (length ``n_chunks + 1``) over the row index space.

    ``ROWS`` splits rows evenly; ``NNZ`` places boundaries so every chunk
    holds approximately ``nnz / n_chunks`` non-zeros (binary search on
    the row-pointer array -- the classic merge-path-lite balancing).

    The boundaries are always monotonically non-decreasing and cover
    ``[0, nrows]`` exactly, so every row lands in exactly one chunk.
    Chunks may be *empty* when ``n_chunks > nrows`` (ROWS) or when one
    dense row absorbs several chunks' worth of non-zeros (NNZ); callers
    either skip empty chunks or drop them (:func:`make_shards`).
    """
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be > 0, got {n_chunks}")
    m = matrix.nrows
    if strategy is PartitionStrategy.ROWS:
        return np.linspace(0, m, n_chunks + 1).astype(np.int64)
    if strategy is PartitionStrategy.NNZ:
        targets = np.linspace(0, matrix.nnz, n_chunks + 1)
        bounds = np.searchsorted(matrix.rowptr, targets, side="left").astype(np.int64)
        bounds[0], bounds[-1] = 0, m
        return np.maximum.accumulate(np.clip(bounds, 0, m))
    raise ValueError(f"unknown strategy {strategy!r}")  # pragma: no cover


@dataclass(frozen=True)
class ShardDescriptor:
    """Where one shard sits inside its parent matrix."""

    #: Index of this shard in the partition (0-based, launch order).
    shard_id: int
    #: First parent row covered (inclusive).
    row_lo: int
    #: One past the last parent row covered.
    row_hi: int
    #: Non-zeros inside the shard.
    nnz: int

    @property
    def n_rows(self) -> int:
        """Rows this shard covers."""
        return self.row_hi - self.row_lo

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"shard {self.shard_id}: rows [{self.row_lo}, {self.row_hi}) nnz={self.nnz}"


@dataclass(frozen=True)
class Shard:
    """One independently-plannable piece of a partitioned matrix.

    ``matrix`` is the sub-CSR over ``[row_lo, row_hi)`` with the parent's
    column count, so the shard consumes the full RHS vector and its
    result scatters back into ``y[row_lo:row_hi]``.  ``features`` is the
    shard's own Table I vector -- the planner sees the shard as a matrix
    in its own right, which is exactly what lets a skewed shard pick a
    different kernel than its siblings.
    """

    descriptor: ShardDescriptor
    matrix: CSRMatrix
    features: Optional[MatrixFeatures] = None


def extract_row_block(matrix: CSRMatrix, lo: int, hi: int) -> CSRMatrix:
    """Sub-CSR over the contiguous row range ``[lo, hi)``.

    Zero-copy where possible: ``colidx`` and ``val`` are contiguous
    slices of the parent's arrays (NumPy views, no copy); only the
    rebased ``rowptr`` (``hi - lo + 1`` elements) is newly allocated.
    """
    if not 0 <= lo <= hi <= matrix.nrows:
        raise ValueError(
            f"row range [{lo}, {hi}) invalid for {matrix.nrows} rows"
        )
    start, end = int(matrix.rowptr[lo]), int(matrix.rowptr[hi])
    return CSRMatrix(
        matrix.rowptr[lo : hi + 1] - start,
        matrix.colidx[start:end],
        matrix.val[start:end],
        (hi - lo, matrix.ncols),
    )


def make_shards(
    matrix: CSRMatrix,
    n_shards: int,
    strategy: PartitionStrategy = PartitionStrategy.NNZ,
    *,
    with_features: bool = True,
) -> List[Shard]:
    """Partition ``matrix`` into at most ``n_shards`` row-shards.

    Boundaries come from :func:`row_partition` under the given strategy;
    empty row ranges (possible when ``n_shards > nrows`` or when one
    dense row swallows several NNZ targets) are dropped, so the
    effective shard count can be smaller than requested but every parent
    row is covered by exactly one returned shard.  With
    ``with_features`` (default) each shard carries its own Table I
    feature vector for independent planning.
    """
    bounds = row_partition(matrix, n_shards, strategy)
    shards: List[Shard] = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        lo, hi = int(lo), int(hi)
        if hi <= lo:
            continue
        sub = extract_row_block(matrix, lo, hi)
        shards.append(
            Shard(
                descriptor=ShardDescriptor(
                    shard_id=len(shards), row_lo=lo, row_hi=hi, nnz=sub.nnz
                ),
                matrix=sub,
                features=extract_features(sub) if with_features else None,
            )
        )
    if not shards and matrix.nrows == 0:
        # Degenerate zero-row matrix: one empty shard keeps executors
        # honest (they still produce the length-0 result vector).
        shards.append(
            Shard(
                descriptor=ShardDescriptor(0, 0, 0, 0),
                matrix=matrix,
                features=extract_features(matrix) if with_features else None,
            )
        )
    return shards
