"""Sharded execution and request coalescing (``repro.shard``).

The paper balances work *inside* one dispatch (binning rows, one kernel
per bin); this package scales the same idea *past* one dispatch:

- :mod:`repro.shard.partition` -- cut a matrix into ``K`` row-shards
  (ROWS or NNZ-balanced), each a zero-copy-where-possible sub-CSR with
  its own feature vector, so the tuner plans every shard independently;
- :mod:`repro.shard.executor` -- execute per-shard plans concurrently
  on a pool of devices, scatter-gather the output, degrade a failing
  shard to serial without poisoning its siblings;
- :mod:`repro.shard.scheduler` -- coalesce concurrent same-matrix SpMV
  requests into one multi-RHS dispatch behind an admission-controlled
  queue.

Import note: only the partition layer is imported eagerly.
:mod:`repro.device.cpu` imports this package for ``row_partition``
while the executor/scheduler layers import the serve layer (which
imports ``device.cpu``); loading them eagerly here would complete that
cycle.  The executor/scheduler names resolve lazily on first attribute
access (PEP 562).
"""

from __future__ import annotations

from repro.shard.partition import (
    PartitionStrategy,
    Shard,
    ShardDescriptor,
    extract_row_block,
    make_shards,
    row_partition,
)

__all__ = [
    "PartitionStrategy",
    "row_partition",
    "ShardDescriptor",
    "Shard",
    "extract_row_block",
    "make_shards",
    "ShardingPolicy",
    "ShardSummary",
    "ShardedResult",
    "ShardExecutorStats",
    "ShardedExecutor",
    "ExecutionBackend",
    "WorkerCrashError",
    "SharedMatrixStore",
    "ShardTaskSpec",
    "ShardRunReport",
    "CoalescePolicy",
    "ScheduledResult",
    "SchedulerStats",
    "RequestScheduler",
]

_EXECUTOR_NAMES = {
    "ShardingPolicy",
    "ShardSummary",
    "ShardedResult",
    "ShardExecutorStats",
    "ShardedExecutor",
}
_SCHEDULER_NAMES = {
    "CoalescePolicy",
    "ScheduledResult",
    "SchedulerStats",
    "RequestScheduler",
}
_BACKEND_NAMES = {
    "ExecutionBackend",
    "WorkerCrashError",
    "SharedMatrixStore",
    "ShardTaskSpec",
    "ShardRunReport",
}


def __getattr__(name: str):
    """Resolve executor/scheduler exports lazily (breaks the import cycle)."""
    if name in _EXECUTOR_NAMES:
        from repro.shard import executor

        return getattr(executor, name)
    if name in _BACKEND_NAMES:
        from repro.shard import backend

        return getattr(backend, name)
    if name in _SCHEDULER_NAMES:
        from repro.shard import scheduler

        return getattr(scheduler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
