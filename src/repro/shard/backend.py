"""Execution backends: where shard work actually runs.

``BENCH_serving.json`` documented the embarrassment that motivates this
module: sharding across a thread pool yields a 1.71x *simulated*
speedup while wall-clock throughput regresses, because the shard
workers are pure Python/NumPy driver code serialising on the GIL.  The
paper's thesis -- auto-tuned SpMV should scale with cores -- needs real
parallelism, which in CPython means processes.

Three backends implement one contract (selected by
``ShardingPolicy(backend=...)``):

- :class:`InlineShardBackend` -- shards execute sequentially on the
  submitting thread.  No pool, no handoff; the baseline the
  differential suite pins every other backend against.
- :class:`ThreadShardBackend` -- the existing ``ThreadPoolExecutor``
  path, kept for simulation accounting (its *simulated* makespan is
  what the paper's model predicts; its wall-clock regression is
  documented, not deleted).
- :class:`ProcessShardBackend` -- a ``ProcessPoolExecutor`` fed
  through ``multiprocessing.shared_memory``.  The parent publishes the
  CSR arrays into one shared segment per structural digest, so only
  plan + shard *descriptors* (:class:`ShardTaskSpec`: row range, scheme
  object, bin->kernel map, trace ids) cross the pickle boundary --
  never the matrix data.

Process-backend hot path
------------------------
Workers keep two module-level caches, both keyed so a restarted worker
rebuilds transparently:

- an *attachment* cache (segment name -> read-only NumPy views over the
  shared buffer); mutation of a mapped block raises in the worker and
  the parent's data is untouched;
- a *bound plan* cache (``(segment, shard_id)`` -> precomputed dispatch
  rows, gather locality, per-dispatch simulated seconds, launch and
  binning overhead).  After warm-up a request costs the worker only
  ``kernel.compute`` per dispatch -- fingerprinting, cost modelling and
  coverage checks are all paid once at bind time.

Values are refreshed into the segment by the parent on *every* lease
(an ``nnz``-sized memcpy): solver traffic re-submits one structure with
evolving values, and the structural digest deliberately cannot see
that.  The per-segment lock makes the copy-dispatch-gather window
atomic against concurrent same-structure requests.

Crash handling: a worker death breaks the whole pool
(``BrokenProcessPool``).  The backend restarts the pool, bumps
``shard_worker_restarts_total`` and raises :class:`WorkerCrashError` --
a :class:`~repro.errors.TransientDeviceError`, so the sharded
executor's resilience path treats the dead worker exactly like a shard
fault: bounded remote retries on the healed pool, then degradation to
the parent-side serial reference path.  Either way the caller sees a
correct result.

Trace propagation: spans cannot cross a process boundary, so each
:class:`ShardTaskSpec` carries its request's ``trace_id`` and parent
span id and each :class:`ShardRunReport` echoes them back alongside the
worker-measured wall interval (``perf_counter`` is CLOCK_MONOTONIC on
Linux -- comparable across processes on one machine); the parent
records the interval into the active trace via
:func:`~repro.observe.spans.trace_event`.
"""

from __future__ import annotations

import enum
import os
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import multiprocessing as mp
import numpy as np

from repro.binning.base import BinningScheme
from repro.core.plan import ExecutionPlan
from repro.device.executor import SimulatedDevice
from repro.device.memory import effective_gather_locality
from repro.device.spec import DeviceSpec
from repro.errors import DeviceError, TransientDeviceError
from repro.formats.csr import CSRMatrix
from repro.kernels.base import row_products_batch
from repro.observe.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
)
from repro.shard.partition import ShardDescriptor
from repro.utils.primitives import segmented_sum_2d

__all__ = [
    "ExecutionBackend",
    "WorkerCrashError",
    "SharedMatrixHandle",
    "SharedMatrixStore",
    "ShardTaskSpec",
    "ShardRunReport",
    "InlineShardBackend",
    "ThreadShardBackend",
    "ProcessShardBackend",
]

_INDEX_ITEM = np.dtype(np.int64).itemsize
_VALUE_ITEM = np.dtype(np.float64).itemsize


class ExecutionBackend(enum.Enum):
    """Where shard work runs: caller thread, thread pool, process pool."""

    INLINE = "inline"
    THREAD = "thread"
    PROCESS = "process"

    @classmethod
    def coerce(cls, value) -> "ExecutionBackend":
        """Accept an enum member or its string name (CLI friendliness)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            names = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown execution backend {value!r}; expected one of {names}"
            ) from None


class WorkerCrashError(TransientDeviceError):
    """A pool worker died mid-request (the pool has been restarted).

    Subclasses :class:`~repro.errors.TransientDeviceError` on purpose:
    the resilience layer only catches :class:`~repro.errors.ReproError`
    subclasses, and a dead worker *is* a transient device fault -- the
    request must retry on the healed pool or degrade to the serial
    path, never surface a raw ``BrokenProcessPool`` to the caller.
    """


# ---------------------------------------------------------------------------
# Shared-memory matrix store (parent side)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SharedMatrixHandle:
    """Picklable pointer to one published CSR matrix.

    Everything a worker needs to attach: the segment name, the shape
    that sections the flat buffer into ``rowptr | colidx | val``, and
    the structural digest the worker keys its caches by.
    """

    #: OS name of the ``multiprocessing.shared_memory`` segment.
    segment: str
    #: Structural digest of the published matrix (cache key).
    digest: str
    shape: Tuple[int, int]
    nnz: int

    @property
    def total_bytes(self) -> int:
        """Size of the flat segment layout."""
        return (
            (self.shape[0] + 1) * _INDEX_ITEM
            + self.nnz * _INDEX_ITEM
            + self.nnz * _VALUE_ITEM
        )


class _Segment:
    """One live shared segment plus its parent-side views and lock."""

    __slots__ = ("shm", "handle", "lock", "rowptr", "colidx", "val")

    def __init__(self, shm, handle: SharedMatrixHandle):
        self.shm = shm
        self.handle = handle
        self.lock = threading.Lock()
        self.rowptr, self.colidx, self.val = _section_views(
            shm.buf, handle, writeable=True
        )


def _section_views(
    buf, handle: SharedMatrixHandle, *, writeable: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Slice one flat segment buffer into the three CSR arrays."""
    m = handle.shape[0]
    nnz = handle.nnz
    o1 = (m + 1) * _INDEX_ITEM
    o2 = o1 + nnz * _INDEX_ITEM
    rowptr = np.frombuffer(buf, dtype=np.int64, count=m + 1, offset=0)
    colidx = np.frombuffer(buf, dtype=np.int64, count=nnz, offset=o1)
    val = np.frombuffer(buf, dtype=np.float64, count=nnz, offset=o2)
    for arr in (rowptr, colidx, val):
        arr.flags.writeable = writeable
    return rowptr, colidx, val


class SharedMatrixStore:
    """Parent-side registry of published matrices, one segment per digest.

    ``lease`` is the only access path: it publishes the structure on
    first sight, refreshes the *values* on every call (the structural
    digest cannot see value changes -- solver traffic mutates values in
    place between submits), and holds the segment's lock for the
    duration of the caller's ``with`` block so concurrent
    same-structure requests cannot tear each other's value windows.

    ``close`` unlinks every segment; ``SharedMemory.unlink`` also
    unregisters from the parent's ``resource_tracker``, so a closed
    store leaks nothing and triggers no tracker warnings at exit.
    """

    def __init__(self, capacity: int = 8):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._segments: "OrderedDict[str, _Segment]" = OrderedDict()
        self._closed = False

    @contextmanager
    def lease(self, digest: str, matrix: CSRMatrix) -> Iterator[SharedMatrixHandle]:
        """Publish-or-refresh ``matrix`` and hold its segment lock."""
        seg = self._acquire_segment(digest, matrix)
        with seg.lock:
            # Values refresh on every lease: an O(nnz) memcpy buys
            # correctness against in-place value mutation, which the
            # structural digest is blind to by design.
            np.copyto(seg.val, matrix.val)
            yield seg.handle

    def _acquire_segment(self, digest: str, matrix: CSRMatrix) -> _Segment:
        from multiprocessing import shared_memory

        with self._lock:
            if self._closed:
                raise DeviceError(
                    "SharedMatrixStore used after close(); "
                    "create a new backend"
                )
            seg = self._segments.get(digest)
            if seg is not None:
                self._segments.move_to_end(digest)
                return seg
            handle_shape = matrix.shape
            nnz = matrix.nnz
            size = max(
                1,
                (handle_shape[0] + 1) * _INDEX_ITEM
                + nnz * (_INDEX_ITEM + _VALUE_ITEM),
            )
            shm = shared_memory.SharedMemory(create=True, size=size)
            handle = SharedMatrixHandle(
                segment=shm.name, digest=digest,
                shape=handle_shape, nnz=nnz,
            )
            seg = _Segment(shm, handle)
            np.copyto(seg.rowptr, matrix.rowptr)
            np.copyto(seg.colidx, matrix.colidx)
            self._segments[digest] = seg
            while len(self._segments) > self.capacity:
                self._evict_one()
            return seg

    def _evict_one(self) -> None:
        """Drop the least-recently-leased idle segment (holds _lock)."""
        for key, seg in self._segments.items():
            if seg.lock.acquire(blocking=False):
                try:
                    del self._segments[key]
                    _destroy_segment(seg)
                finally:
                    seg.lock.release()
                return
        # Every segment is mid-lease: let the store run over capacity
        # rather than unlink a mapped-and-active segment.
        return

    def segment_names(self) -> Tuple[str, ...]:
        """OS names of the live segments (leak-check hooks for tests)."""
        with self._lock:
            return tuple(s.handle.segment for s in self._segments.values())

    def digests(self) -> Tuple[str, ...]:
        """Structural digests of the currently published matrices."""
        with self._lock:
            return tuple(self._segments.keys())

    def close(self) -> None:
        """Unlink every segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = list(self._segments.values())
            self._segments.clear()
        for seg in segments:
            _destroy_segment(seg)

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)


def _destroy_segment(seg: _Segment) -> None:
    # Drop the NumPy views first: SharedMemory.close() refuses (on
    # CPython with exports tracking) while buffer exports are alive.
    seg.rowptr = seg.colidx = seg.val = None
    seg.shm.close()
    try:
        seg.shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


# ---------------------------------------------------------------------------
# The pickle boundary: task specs out, run reports back
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardTaskSpec:
    """Everything that crosses the pickle boundary for one shard.

    Deliberately *no* matrix arrays: the worker rebuilds the shard
    sub-CSR from the shared segment plus the ``[row_lo, row_hi)``
    range, and rebuilds the binning deterministically from the scheme
    object (``scheme.bin_rows`` is a pure function of structure).
    """

    digest: str
    shard_id: int
    row_lo: int
    row_hi: int
    #: The shard plan's binning scheme (small plain object, picklable).
    scheme: BinningScheme
    #: ``bin_id -> kernel name`` from the shard's plan.
    bin_kernels: Dict[int, str]
    #: Plan generation of this spec's digest.  Worker-side bound-plan
    #: caches key on it: when the parent invalidates a matrix (device
    #: change, degraded plan, planner swap) it bumps the generation, so
    #: the next dispatch *rebinds* against the fresh plan instead of
    #: silently reusing a stale ``_BoundShardPlan``.
    generation: int = 0
    #: Trace identity propagated across the process boundary; echoed
    #: back in the :class:`ShardRunReport` and used by the parent to
    #: record the worker interval into the request's trace.
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None
    #: Chaos hook: the worker exits hard before computing (seeded
    #: crash-safety tests only).
    kill: bool = False


@dataclass(frozen=True)
class ShardRunReport:
    """One shard's result as shipped back from a worker process."""

    shard_id: int
    row_lo: int
    row_hi: int
    #: ``(n_rows,)`` for SpMV, ``(n_rows, k)`` for SpMM.
    y: np.ndarray
    #: Simulated seconds (identical accounting to the inline path).
    seconds: float
    dispatch_seconds: Tuple[float, ...]
    launch_seconds: float
    n_passes: int
    #: Worker-measured wall interval (CLOCK_MONOTONIC, comparable to
    #: the parent's ``perf_counter`` on the same machine).
    wall_start: float
    wall_end: float
    #: Worker process id (observability; restart tests assert it moves).
    pid: int
    #: Trace identity echoed back from the task spec.
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    @property
    def n_dispatches(self) -> int:
        """Kernel launches this shard issued."""
        return len(self.dispatch_seconds)


# ---------------------------------------------------------------------------
# Worker side (runs inside pool processes; module-level for picklability)
# ---------------------------------------------------------------------------

#: segment name -> (SharedMemory, rowptr, colidx, val) read-only views.
_ATTACHED: "OrderedDict[str, tuple]" = OrderedDict()
#: (segment name, shard_id) -> bound plan with precomputed costs.
_BOUND: "OrderedDict[Tuple[str, int], _BoundShardPlan]" = OrderedDict()
#: blob key -> unpickled spec group (skips ``pickle.loads`` of scheme
#: objects on every warm request; the parent caches the ``dumps`` side).
_SPEC_GROUPS: "OrderedDict[tuple, Tuple[ShardTaskSpec, ...]]" = OrderedDict()
_MAX_ATTACHED = 8
_MAX_BOUND = 64
_MAX_SPEC_GROUPS = 64


def _cached_specs(key: tuple, blob: bytes) -> Tuple[ShardTaskSpec, ...]:
    """The worker's side of the spec-blob cache."""
    specs = _SPEC_GROUPS.get(key)
    if specs is None:
        specs = pickle.loads(blob)
        _SPEC_GROUPS[key] = specs
        while len(_SPEC_GROUPS) > _MAX_SPEC_GROUPS:
            _SPEC_GROUPS.popitem(last=False)
    else:
        _SPEC_GROUPS.move_to_end(key)
    return specs


def _worker_attach(handle: SharedMatrixHandle):
    """Attach (or reuse) the shared segment, as read-only views."""
    entry = _ATTACHED.get(handle.segment)
    if entry is not None:
        _ATTACHED.move_to_end(handle.segment)
        return entry
    from multiprocessing import resource_tracker, shared_memory

    # Attaching must NOT register with a resource tracker: ownership
    # stays with the parent store.  With a worker-private tracker
    # (spawn, or fork-before-the-parent's-tracker-started) the worker's
    # death would unlink the segment out from under the parent; with a
    # shared tracker (fork-after-start) an unregister here would steal
    # the parent's registration and its own unlink would double-free.
    # ``track=False`` exists only on 3.13+; suppressing registration
    # for the attach call is the 3.10-compatible equivalent.
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=handle.segment)
    finally:
        resource_tracker.register = original_register
    rowptr, colidx, val = _section_views(shm.buf, handle, writeable=False)
    entry = (shm, rowptr, colidx, val)
    _ATTACHED[handle.segment] = entry
    while len(_ATTACHED) > _MAX_ATTACHED:
        old_segment, (old_shm, *_views) = _ATTACHED.popitem(last=False)
        # Bound plans hold views into the evicted mapping; drop them
        # first or ``close()`` trips on live buffer exports.
        for key in [k for k in _BOUND if k[0] == old_segment]:
            del _BOUND[key]
        del _views
        try:
            old_shm.close()
        except BufferError:  # pragma: no cover - exports elsewhere
            pass
    return entry


class _BoundShardPlan:
    """One shard's plan bound to shared memory, costs precomputed.

    Binding pays everything that does not depend on the right-hand
    side: sub-CSR construction (views into the shared segment -- the
    ``colidx``/``val`` slices stay read-only and zero-copy), binning
    rebuild, coverage check, gather locality, per-dispatch simulated
    seconds, launch and binning overhead.  A warm request then runs
    ``kernel.compute`` per dispatch and nothing else; the accounting
    formulas mirror ``SimulatedDevice.run_spmv``/``run_spmm`` +
    ``run_plan_*`` term for term, so results *and* simulated seconds
    are identical to the inline path.
    """

    __slots__ = (
        "matrix", "device", "overhead", "launch_per", "dispatches",
        "spmv_times", "spmv_seconds", "_spmm_times",
    )

    def __init__(self, handle: SharedMatrixHandle, spec: ShardTaskSpec,
                 device_spec: DeviceSpec):
        _shm, rowptr, colidx, val = _worker_attach(handle)
        lo, hi = spec.row_lo, spec.row_hi
        start, end = int(rowptr[lo]), int(rowptr[hi])
        # Rebased rowptr is a fresh small array; colidx/val stay
        # read-only zero-copy views into the shared segment.
        self.matrix = CSRMatrix(
            rowptr[lo : hi + 1] - start,
            colidx[start:end],
            val[start:end],
            (hi - lo, handle.shape[1]),
        )
        self.device = SimulatedDevice(
            spec=device_spec, registry=NULL_REGISTRY
        )
        plan = ExecutionPlan(
            scheme=spec.scheme,
            binning=spec.scheme.bin_rows(self.matrix),
            bin_kernels=dict(spec.bin_kernels),
            source="backend",
        )
        raw = plan.dispatches()
        SimulatedDevice._check_coverage(self.matrix, raw)
        lengths = self.matrix.row_lengths()
        g = effective_gather_locality(self.matrix, device_spec)
        self.dispatches = tuple(
            (kernel, np.asarray(rows, dtype=np.int64), lengths[rows], g)
            for kernel, rows in raw if len(rows)
        )
        self.overhead = spec.scheme.overhead_seconds(
            self.matrix, device_spec
        )
        self.launch_per = device_spec.seconds(
            device_spec.kernel_launch_cycles
        )
        self.spmv_times = tuple(
            self.device.time_dispatch(k, lens, g, include_launch=False)
            for k, _rows, lens, g in self.dispatches
        )
        self.spmv_seconds = float(
            sum(self.spmv_times)
            + len(self.spmv_times) * self.launch_per
            + self.overhead
        )
        self._spmm_times: Dict[int, Tuple[float, ...]] = {}

    def _times_for_k(self, k: int) -> Tuple[float, ...]:
        times = self._spmm_times.get(k)
        if times is None:
            times = tuple(
                self.device.time_dispatch(
                    kernel, lens, g, include_launch=False, n_rhs=k
                )
                for kernel, _rows, lens, g in self.dispatches
            )
            self._spmm_times[k] = times
        return times

    def run_spmv(self, x: np.ndarray):
        u = np.zeros(self.matrix.nrows)
        for kernel, rows, _lens, _g in self.dispatches:
            u[rows] = kernel.compute(self.matrix, x, rows)
        launch_s = len(self.dispatches) * self.launch_per
        return u, self.spmv_seconds, self.spmv_times, launch_s, 1

    def _spmm_pass(self, U: np.ndarray, X: np.ndarray, lo: int, hi: int):
        """One column-block pass; mirrors ``SimulatedDevice.run_spmm``."""
        block = X[:, lo:hi]
        for _kernel, rows, _lens, _g in self.dispatches:
            products, offsets = row_products_batch(
                self.matrix, block, rows
            )
            U[rows, lo:hi] = segmented_sum_2d(products, offsets)
        times = self._times_for_k(hi - lo)
        launch_s = len(self.dispatches) * self.launch_per
        return times, launch_s

    def run_spmm(self, X: np.ndarray, max_rhs: Optional[int]):
        k = X.shape[1]
        U = np.zeros((self.matrix.nrows, k))
        if max_rhs is None or k <= max_rhs:
            times, launch_s = self._spmm_pass(U, X, 0, k)
            seconds = float(sum(times) + launch_s + self.overhead)
            return U, seconds, times, launch_s, 1
        seconds = self.overhead
        all_times: List[float] = []
        launch_total = 0.0
        n_passes = 0
        for lo in range(0, k, max_rhs):
            hi = min(lo + max_rhs, k)
            times, launch_s = self._spmm_pass(U, X, lo, hi)
            seconds += float(sum(times) + launch_s)
            all_times.extend(times)
            launch_total += launch_s
            n_passes += 1
        return U, float(seconds), tuple(all_times), launch_total, n_passes


def _worker_bound(handle: SharedMatrixHandle, spec: ShardTaskSpec,
                  device_spec: DeviceSpec) -> _BoundShardPlan:
    # Generation is part of the key on purpose: a parent-side
    # invalidation bumps it, which makes every stale bound plan for the
    # digest unreachable (LRU eviction reclaims them) and forces a
    # rebind against the spec's *current* scheme + kernel map.
    key = (handle.segment, spec.shard_id, spec.generation)
    bound = _BOUND.get(key)
    if bound is None:
        bound = _BoundShardPlan(handle, spec, device_spec)
        _BOUND[key] = bound
        while len(_BOUND) > _MAX_BOUND:
            _BOUND.popitem(last=False)
    else:
        _BOUND.move_to_end(key)
    return bound


def _worker_run(
    handle: SharedMatrixHandle,
    device_spec: DeviceSpec,
    specs: Optional[Tuple[ShardTaskSpec, ...]],
    rhs: np.ndarray,
    batch: bool,
    max_rhs: Optional[int],
    blob: Optional[bytes] = None,
    blob_key: Optional[tuple] = None,
    trace_id: Optional[str] = None,
    parent_span_id: Optional[str] = None,
) -> List[ShardRunReport]:
    """Pool-worker entry point: run a group of shards, report back.

    The hot path sends ``(blob, blob_key)`` instead of ``specs``: the
    pickled spec group travels as opaque bytes (a memcpy for the pool's
    own pickler) and is unpickled once per key, with the per-request
    trace identity carried in the two explicit arguments.
    """
    if specs is None:
        specs = _cached_specs(blob_key, blob)
    reports: List[ShardRunReport] = []
    for spec in specs:
        bound = _worker_bound(handle, spec, device_spec)
        if spec.kill:
            # Chaos hook: die the way a segfaulting worker would --
            # no exception, no cleanup, the pool just breaks.
            os._exit(23)
        w0 = perf_counter()
        if batch:
            y, seconds, times, launch_s, n_passes = bound.run_spmm(
                rhs, max_rhs
            )
        else:
            y, seconds, times, launch_s, n_passes = bound.run_spmv(rhs)
        w1 = perf_counter()
        reports.append(ShardRunReport(
            shard_id=spec.shard_id,
            row_lo=spec.row_lo,
            row_hi=spec.row_hi,
            y=y,
            seconds=seconds,
            dispatch_seconds=times,
            launch_seconds=launch_s,
            n_passes=n_passes,
            wall_start=w0,
            wall_end=w1,
            pid=os.getpid(),
            trace_id=trace_id if trace_id is not None else spec.trace_id,
            parent_span_id=(
                parent_span_id if parent_span_id is not None
                else spec.parent_span_id
            ),
        ))
    return reports


def _worker_probe_mutation(handle: SharedMatrixHandle) -> str:
    """Try to mutate the mapped block (read-only verification hook).

    Returns the exception class name the write raised, or
    ``"mutated"`` if the write silently succeeded (test failure).
    """
    _shm, _rowptr, _colidx, val = _worker_attach(handle)
    try:
        val[0] = -1.0
    except (ValueError, TypeError) as exc:
        return type(exc).__name__
    return "mutated"  # pragma: no cover - would be a real bug


# ---------------------------------------------------------------------------
# Parent-side backends
# ---------------------------------------------------------------------------

class InlineShardBackend:
    """Shards run sequentially on the submitting thread."""

    kind = ExecutionBackend.INLINE

    def run_tasks(self, thunks: Sequence[Callable[[], object]]) -> list:
        return [thunk() for thunk in thunks]

    def invalidate(self, digest: str) -> None:
        """No backend-side plan state to drop (plans live in the caller)."""

    def invalidate_all(self) -> None:
        """No backend-side plan state to drop."""

    def close(self) -> None:
        """Nothing to release."""


class ThreadShardBackend:
    """Shards run on a lazily-created thread pool (the legacy path)."""

    kind = ExecutionBackend.THREAD

    def __init__(self, max_workers: int):
        if max_workers <= 0:
            raise ValueError(f"max_workers must be > 0, got {max_workers}")
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def run_tasks(self, thunks: Sequence[Callable[[], object]]) -> list:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
        futures = [self._pool.submit(t) for t in thunks]
        return [f.result() for f in futures]

    def invalidate(self, digest: str) -> None:
        """No backend-side plan state to drop (plans live in the caller)."""

    def invalidate_all(self) -> None:
        """No backend-side plan state to drop."""

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _preferred_mp_context():
    """``fork`` when the platform has it (cheap, shares imports), else
    the platform default (``spawn`` on macOS/Windows)."""
    method = os.environ.get("REPRO_MP_START_METHOD")
    if method:
        return mp.get_context(method)
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def _chunk(specs: List[ShardTaskSpec], n_groups: int):
    """Split specs into at most ``n_groups`` contiguous task groups.

    Task fusion is the wall-clock lever on narrow machines: one group
    per *worker* (not per shard) keeps the request at
    ``min(workers, shards)`` IPC round trips.
    """
    n_groups = max(1, min(n_groups, len(specs)))
    bounds = np.linspace(0, len(specs), n_groups + 1).astype(int)
    return [
        tuple(specs[lo:hi])
        for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


class ProcessShardBackend:
    """Shards run in a process pool over shared-memory CSR blocks.

    Parameters
    ----------
    n_workers:
        Pool width; defaults to ``min(n_shards_hint, os.cpu_count())``.
    device_spec:
        The simulated device constants workers cost plans against
        (must match the parent's devices for bit-identical seconds).
    registry:
        Receives ``shard_worker_restarts_total``.
    store_capacity:
        Published segments kept (LRU beyond it, idle segments only).
    """

    kind = ExecutionBackend.PROCESS

    def __init__(
        self,
        *,
        n_workers: Optional[int] = None,
        n_shards_hint: int = 4,
        device_spec: Optional[DeviceSpec] = None,
        registry: Optional[MetricsRegistry] = None,
        store_capacity: int = 8,
    ):
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be > 0, got {n_workers}")
        self.registry = get_registry() if registry is None else registry
        self.n_workers = n_workers or max(
            1, min(n_shards_hint, os.cpu_count() or 1)
        )
        self.device_spec = (
            device_spec if device_spec is not None
            else DeviceSpec.kaveri_apu()
        )
        self.store = SharedMatrixStore(capacity=store_capacity)
        self._ctx = _preferred_mp_context()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._closed = False
        self._restarts = 0
        self._seq = 0
        #: (digest, n_shards) -> [(blob_key, pickled spec group), ...].
        #: Spec groups are pure functions of the shard set (trace ids and
        #: chaos flags travel separately), so the ``pickle.dumps`` of the
        #: scheme objects is paid once per structure, not per request.
        self._blobs: "OrderedDict[tuple, list]" = OrderedDict()
        #: digest -> plan generation.  Bumped by :meth:`invalidate`;
        #: rides in every :class:`ShardTaskSpec` and keys the worker's
        #: bound-plan cache, so stale worker-side plans rebind.
        self._generations: Dict[str, int] = {}
        #: Chaos hooks (seeded crash tests): request sequence numbers
        #: whose first shard's worker dies, or kill on *every* dispatch.
        self.kill_requests: set = set()
        self.kill_all = False
        self._m_restarts = self.registry.counter(
            "shard_worker_restarts_total",
            help_text="Process-pool restarts after a worker death.",
        )

    # -- pool lifecycle ---------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise DeviceError(
                    "ProcessShardBackend used after close(); "
                    "create a new executor"
                )
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers, mp_context=self._ctx
                )
            return self._pool

    def _handle_crash(self, exc: BaseException) -> WorkerCrashError:
        """Restart the pool after a worker death; count it."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
            self._restarts += 1
        self._m_restarts.inc()
        # Structured incident signal: a worker death is exactly the
        # moment a forensic snapshot is worth its cost (the blackbox
        # listens for this event name).
        self.registry.emit(
            "worker_crash",
            restarts=self._restarts,
            error=type(exc).__name__,
        )
        return WorkerCrashError(
            f"process-pool worker died mid-request ({exc}); "
            f"pool restarted"
        )

    @property
    def restarts(self) -> int:
        """Pool restarts after worker deaths so far."""
        with self._lock:
            return self._restarts

    def close(self) -> None:
        """Shut the pool down and unlink every shared segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self.store.close()

    # -- invalidation -----------------------------------------------------
    def generation(self, digest: str) -> int:
        """The digest's current plan generation (0 until invalidated)."""
        with self._lock:
            return self._generations.get(digest, 0)

    def invalidate(self, digest: str) -> None:
        """Drop this digest's pre-pickled spec blobs; bump its generation.

        The bump is what reaches the workers: the next dispatch's specs
        (and rebuilt blobs) carry the new generation, which misses every
        worker-side ``_BoundShardPlan`` and spec-group cache entry keyed
        under the old one -- the shard plans rebind against whatever the
        parent re-plans, instead of silently serving stale plans.
        """
        with self._lock:
            self._generations[digest] = self._generations.get(digest, 0) + 1
            for key in [k for k in self._blobs if k[0] == digest]:
                del self._blobs[key]

    def invalidate_all(self) -> None:
        """:meth:`invalidate` every digest this backend has ever served."""
        with self._lock:
            digests = set(self._generations) | set(
                k[0] for k in self._blobs
            )
        for digest in digests | set(self.store.digests()):
            self.invalidate(digest)

    # -- task-spec construction -------------------------------------------
    def _specs(
        self,
        digest: str,
        descriptors: Sequence[ShardDescriptor],
        plans: Sequence[ExecutionPlan],
        trace_ref: Tuple[Optional[str], Optional[str]],
        *,
        kill_first: bool = False,
    ) -> List[ShardTaskSpec]:
        trace_id, parent_span_id = trace_ref
        with self._lock:
            generation = self._generations.get(digest, 0)
        return [
            ShardTaskSpec(
                digest=digest,
                shard_id=d.shard_id,
                row_lo=d.row_lo,
                row_hi=d.row_hi,
                scheme=plan.scheme,
                bin_kernels=dict(plan.bin_kernels),
                generation=generation,
                trace_id=trace_id,
                parent_span_id=parent_span_id,
                kill=self.kill_all or (kill_first and d.shard_id == 0),
            )
            for d, plan in zip(descriptors, plans)
        ]

    def _group_blobs(
        self,
        digest: str,
        descriptors: Sequence[ShardDescriptor],
        plans: Sequence[ExecutionPlan],
    ) -> list:
        """Chunked, pre-pickled spec groups for the warm path (cached).

        The worker-side blob key carries the digest's current plan
        generation: after an :meth:`invalidate` the rebuilt blobs hash
        to fresh keys, so a restarted-or-warm worker can never serve the
        new specs from its stale ``_SPEC_GROUPS`` entry.
        """
        cache_key = (digest, len(descriptors))
        with self._lock:
            groups = self._blobs.get(cache_key)
            if groups is not None:
                self._blobs.move_to_end(cache_key)
                return groups
        specs = self._specs(digest, descriptors, plans, (None, None))
        generation = specs[0].generation if specs else 0
        groups = [
            ((digest, len(descriptors), generation, i), pickle.dumps(group))
            for i, group in enumerate(_chunk(specs, self.n_workers))
        ]
        with self._lock:
            self._blobs[cache_key] = groups
            while len(self._blobs) > _MAX_SPEC_GROUPS:
                self._blobs.popitem(last=False)
        return groups

    # -- execution --------------------------------------------------------
    def execute(
        self,
        matrix: CSRMatrix,
        digest: str,
        descriptors: Sequence[ShardDescriptor],
        plans: Sequence[ExecutionPlan],
        rhs: np.ndarray,
        *,
        batch: bool,
        max_rhs: Optional[int],
        trace_ref: Tuple[Optional[str], Optional[str]] = (None, None),
    ) -> List[ShardRunReport]:
        """Run every shard remotely; raise ``WorkerCrashError`` on death.

        Shards are fused into ``min(n_workers, n_shards)`` task groups
        (one pickle round trip each).  A worker death breaks the whole
        pool, so the crash path is all-or-nothing: the pool restarts
        and the caller (the sharded executor) re-drives each shard
        through the resilience path.
        """
        with self._lock:
            seq = self._seq
            self._seq += 1
        kill_first = seq in self.kill_requests
        pool = self._ensure_pool()
        trace_id, parent_span_id = trace_ref
        with self.store.lease(digest, matrix) as handle:
            if kill_first or self.kill_all:
                # Chaos path: per-request kill flags make the specs
                # uncacheable, so they travel uncompressed.
                specs = self._specs(
                    digest, descriptors, plans, trace_ref,
                    kill_first=kill_first,
                )
                futures = [
                    pool.submit(
                        _worker_run, handle, self.device_spec, group,
                        rhs, batch, max_rhs,
                    )
                    for group in _chunk(specs, self.n_workers)
                ]
            else:
                futures = [
                    pool.submit(
                        _worker_run, handle, self.device_spec, None,
                        rhs, batch, max_rhs, blob, blob_key,
                        trace_id, parent_span_id,
                    )
                    for blob_key, blob in self._group_blobs(
                        digest, descriptors, plans
                    )
                ]
            try:
                reports = [r for f in futures for r in f.result()]
            except BrokenProcessPool as exc:
                raise self._handle_crash(exc) from exc
        return sorted(reports, key=lambda r: r.shard_id)

    def execute_single(
        self,
        matrix: CSRMatrix,
        digest: str,
        descriptor: ShardDescriptor,
        plan: ExecutionPlan,
        rhs: np.ndarray,
        *,
        batch: bool,
        max_rhs: Optional[int],
        trace_ref: Tuple[Optional[str], Optional[str]] = (None, None),
    ) -> ShardRunReport:
        """Retry one shard remotely (the resilience path's attempt)."""
        specs = self._specs(digest, [descriptor], [plan], trace_ref)
        pool = self._ensure_pool()
        with self.store.lease(digest, matrix) as handle:
            future = pool.submit(
                _worker_run, handle, self.device_spec, tuple(specs),
                rhs, batch, max_rhs,
            )
            try:
                return future.result()[0]
            except BrokenProcessPool as exc:
                raise self._handle_crash(exc) from exc

    # -- test hooks -------------------------------------------------------
    def probe_mutation(self, matrix: CSRMatrix, digest: str) -> str:
        """Ask a worker to mutate the shared block (read-only check)."""
        pool = self._ensure_pool()
        with self.store.lease(digest, matrix) as handle:
            return pool.submit(_worker_probe_mutation, handle).result()
