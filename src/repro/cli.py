"""Command-line interface: ``python -m repro <command>``.

Nine commands cover the deployment workflow:

- ``train``  -- offline-train a tuner on a synthetic corpus (or point it
  at a directory of Matrix Market files) and save it to JSON;
- ``plan``   -- load a trained tuner and print the execution plan for a
  matrix (``.mtx`` file or a synthetic ``family:nrows`` spec);
- ``run``    -- plan + execute an SpMV, verify the result, and compare
  the simulated time against the single-kernel and CSR-Adaptive
  baselines;
- ``serve-demo`` -- drive an :class:`~repro.serve.SpMVServer` with
  repeated single and batched traffic and print the serving stats
  (plan-cache hit rate, per-stage seconds, launches amortised); pass
  ``--metrics`` to also dump the metrics registry,
  ``--workload solver`` to replace the mixed traffic with a CG solve
  whose every iteration rides the serving layer, or
  ``--tenants N`` (optionally with ``--overload FACTOR``) to serve
  mixed-tenant traffic through the admission front door and print
  per-tenant shedding + admission stats, or ``--bundle-dir DIR`` to
  fly the incident flight recorder and auto-write triggered debug
  bundles into ``DIR``;
- ``doctor`` -- load a debug bundle (or the latest bundle in a
  ``--bundle-dir`` output directory) and render an incident report:
  trigger timeline, flight-tail latency, top offenders, plan-cache
  and exploration anomalies, exemplar/trace cross-check;
- ``solve``  -- run an iterative solver (CG, BiCGSTAB, Jacobi, power
  iteration) end to end through the server, with optional sharding and
  chaos, and print the convergence history + per-iteration SLO health;
- ``metrics`` -- run the same demo traffic against a fresh metrics
  registry and emit the Prometheus-text and JSON snapshots (cache
  hits/misses, per-stage latency histograms, per-kernel dispatch
  counters, structured events);
- ``trace``  -- kernel-level profile of a matrix's plan (lane occupancy,
  memory/compute split, roofline efficiency per launch), or a full
  ``(granularity, bin, kernel)`` sweep with ``--sweep``;
- ``info``   -- show the simulated device and the kernel pool.

Examples
--------
::

    python -m repro train --matrices 150 --out tuner.json
    python -m repro plan --model tuner.json --matrix road_network:50000
    python -m repro run  --model tuner.json --matrix my_matrix.mtx
    python -m repro serve-demo --requests 32 --batch 8 --metrics
    python -m repro serve-demo --shards 4 --coalesce --trace \\
        --trace-out trace.json
    python -m repro serve-demo --workload solver --requests 200
    python -m repro serve-demo --tenants 3 --overload 2 --requests 48
    python -m repro serve-demo --chaos --bundle-dir bundles/
    python -m repro doctor bundles/
    python -m repro solve --method cg --matrix spd:2000 --shards 4 \\
        --backend process
    python -m repro solve --method jacobi --matrix spd:2000 --chaos
    python -m repro trace --matrix power_law:5000 --sweep
    python -m repro metrics --format prometheus
    python -m repro info
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.baselines.csr_adaptive import CSRAdaptiveSpMV
from repro.baselines.single_kernel import SingleKernelSpMV
from repro.core.framework import AutoTuner
from repro.core.tuning_space import TuningSpace
from repro.device.spec import DeviceSpec
from repro.formats.csr import CSRMatrix
from repro.formats.matrixmarket import read_matrix_market
from repro.kernels.registry import DEFAULT_KERNEL_NAMES
from repro.learn import LearningPolicy
from repro.matrices import generators as gen
from repro.matrices.collection import generate_collection
from repro.device import SimulatedDevice
from repro.observe import (
    MetricsRegistry,
    RecordingSink,
    set_registry,
    to_json,
    to_prometheus_text,
)
from repro.resilient import (
    ChaosDevice,
    FaultSchedule,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.serve import AdmissionPolicy, SpMVServer, TenantConfig
from repro.shard import PartitionStrategy
from repro.shard.executor import ShardingPolicy
from repro.shard.scheduler import CoalescePolicy
from repro.trace import KernelProfiler, SLOTarget, TracingPolicy

__all__ = ["main", "build_parser", "load_matrix"]

#: Synthetic families reachable from the CLI as ``family:nrows``.
_CLI_FAMILIES = {
    "road_network": lambda n, seed: gen.road_network(n, seed=seed),
    "banded": lambda n, seed: gen.banded(n, seed=seed),
    "power_law": lambda n, seed: gen.power_law_graph(n, seed=seed),
    "cfd": lambda n, seed: gen.cfd_like(n, seed=seed),
    "bimodal": lambda n, seed: gen.bimodal_rows(n, seed=seed),
    "fem_constrained": lambda n, seed: gen.fem_constrained(n, seed=seed),
    "quantum_chemistry": lambda n, seed: gen.quantum_chemistry_like(
        n, seed=seed
    ),
    "spd": lambda n, seed: gen.spd_system(n, seed=seed),
}


def load_matrix(spec: str, *, seed: int = 0) -> CSRMatrix:
    """Resolve a CLI matrix argument.

    Accepts a Matrix Market path (``*.mtx``) or a synthetic spec of the
    form ``family:nrows`` (see the families above).
    """
    if spec.endswith(".mtx"):
        return read_matrix_market(spec)
    if ":" in spec:
        family, _, size = spec.partition(":")
        if family not in _CLI_FAMILIES:
            raise SystemExit(
                f"unknown family {family!r}; choose from "
                f"{sorted(_CLI_FAMILIES)} or pass a .mtx file"
            )
        try:
            n = int(size)
        except ValueError:
            raise SystemExit(f"bad size in matrix spec {spec!r}") from None
        return _CLI_FAMILIES[family](n, seed)
    raise SystemExit(
        f"matrix spec {spec!r} is neither a .mtx path nor 'family:nrows'"
    )


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_train(args: argparse.Namespace) -> int:
    space = TuningSpace(include_single_bin=not args.no_single_bin)
    tuner = AutoTuner(
        space=space,
        classifier=args.classifier,
        extended_features=args.extended_features,
        seed=args.seed,
    )
    if args.mtx_dir:
        paths = sorted(Path(args.mtx_dir).glob("*.mtx"))
        if not paths:
            raise SystemExit(f"no .mtx files under {args.mtx_dir}")
        corpus = [read_matrix_market(p) for p in paths]
        print(f"training on {len(corpus)} Matrix Market files ...")
    else:
        corpus = generate_collection(args.matrices, seed=args.seed)
        print(f"training on {args.matrices} synthetic matrices ...")
    report = tuner.fit(corpus)
    print(f"  stage-1 hold-out error: {report.stage1_error:.1%}")
    print(f"  stage-2 hold-out error: {report.stage2_error:.1%}")
    tuner.save(args.out)
    print(f"saved tuner to {args.out}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    tuner = AutoTuner.load(args.model)
    matrix = load_matrix(args.matrix, seed=args.seed)
    print(f"matrix: {matrix}")
    plan = tuner.plan(matrix)
    print(plan.describe())
    if args.oracle:
        oracle = tuner.oracle_plan(matrix)
        print(
            f"\noracle: {oracle.scheme.name} "
            f"({oracle.predicted_seconds * 1e3:.3f} ms; prediction is "
            f"{plan.predicted_seconds / oracle.predicted_seconds:.3f}x)"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    tuner = AutoTuner.load(args.model)
    matrix = load_matrix(args.matrix, seed=args.seed)
    print(f"matrix: {matrix}")
    v = np.random.default_rng(args.seed).standard_normal(matrix.ncols)
    result = tuner.run(matrix, v)
    reference = matrix @ v
    ok = np.allclose(result.u, reference, atol=1e-8)
    print(f"result verified: {'OK' if ok else 'MISMATCH'}")
    print(f"kernel-auto   : {result.seconds * 1e3:9.3f} ms "
          f"({result.n_dispatches} launches)")
    for name in ("serial", "vector"):
        t = SingleKernelSpMV(name, tuner.device).time(matrix)
        print(f"kernel-{name:7s}: {t * 1e3:9.3f} ms "
              f"({t / result.seconds:.2f}x vs auto)")
    t_ca = CSRAdaptiveSpMV(device=tuner.device).time(matrix)
    print(f"csr-adaptive  : {t_ca * 1e3:9.3f} ms "
          f"({t_ca / result.seconds:.2f}x vs auto)")
    return 0 if ok else 1


def _drive_demo_traffic(server: SpMVServer, args: argparse.Namespace) -> bool:
    """Run the demo workload against ``server``; True when all verified."""
    rng = np.random.default_rng(args.seed)
    families = sorted(_CLI_FAMILIES)
    matrices = [
        _CLI_FAMILIES[families[i % len(families)]](args.size, args.seed + i)
        for i in range(args.matrices)
    ]
    print(f"workload: {args.matrices} distinct matrices of ~{args.size} rows, "
          f"{args.requests} single + {args.batches} batched (k={args.batch}) "
          f"requests\n")
    ok = True
    singles = [
        (matrices[i % len(matrices)],
         rng.standard_normal(matrices[i % len(matrices)].ncols))
        for i in range(args.requests)
    ]
    if getattr(args, "coalesce", False):
        # Coalescing only wins on *concurrent* traffic: submit from a
        # thread pool so same-matrix requests land inside one window.
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(16, len(singles) or 1)) \
                as pool:
            results = list(pool.map(
                lambda mx: (mx[0], mx[1], server.submit(mx[0], mx[1])),
                singles,
            ))
        for m, x, res in results:
            ok &= bool(np.allclose(res.y, m @ x, atol=1e-8))
    else:
        for m, x in singles:
            res = server.submit(m, x)
            ok &= bool(np.allclose(res.y, m @ x, atol=1e-8))
    for i in range(args.batches):
        m = matrices[i % len(matrices)]
        X = rng.standard_normal((m.ncols, args.batch))
        res = server.submit_batch(m, X)
        ok &= bool(np.allclose(res.y, m @ X, atol=1e-8))
    return ok


def _drive_tenant_traffic(server: SpMVServer, args: argparse.Namespace) -> bool:
    """Mixed-tenant traffic through the front door; True when verified.

    ``--tenants N`` latency tenants split ``--requests`` submissions
    evenly; a ``firehose`` batch tenant offers ``--requests`` more,
    scaled by ``--overload``.  The firehose is rate-limited and
    pending-bounded by the admission policy, so at overload its excess
    sheds (rate/queue) while the latency tenants keep being admitted --
    the per-tenant accounting below is the demo's point.
    """
    from repro.errors import (
        DeadlineExceededError,
        QueueFullError,
        TenantRateLimitError,
    )

    rng = np.random.default_rng(args.seed)
    families = sorted(_CLI_FAMILIES)
    matrices = [
        _CLI_FAMILIES[families[i % len(families)]](args.size, args.seed + i)
        for i in range(args.matrices)
    ]
    tenants = [f"tenant-{i}" for i in range(args.tenants)]
    n_fire = max(1, int(round(args.requests * args.overload)))
    print(f"workload: {args.requests} latency requests across "
          f"{len(tenants)} tenants + {n_fire} batch requests from "
          f"'firehose' ({args.overload:g}x intensity)\n")
    plan = [
        (tenants[i % len(tenants)], "latency", i)
        for i in range(args.requests)
    ] + [("firehose", "batch", i) for i in range(n_fire)]
    ok = True
    admitted = 0
    shed: dict = {}
    for tenant, priority, i in plan:
        m = matrices[i % len(matrices)]
        x = rng.standard_normal(m.ncols)
        try:
            res = server.submit(m, x, tenant=tenant, priority=priority)
        except (TenantRateLimitError, QueueFullError,
                DeadlineExceededError) as exc:
            reason = {"TenantRateLimitError": "rate",
                      "QueueFullError": "queue"}.get(
                type(exc).__name__, "deadline")
            shed[tenant, reason] = shed.get((tenant, reason), 0) + 1
            continue
        admitted += 1
        ok &= bool(np.allclose(res.y, m @ x, atol=1e-8))
    print(f"admitted: {admitted}/{len(plan)}")
    for (tenant, reason), n in sorted(shed.items()):
        print(f"  shed {tenant:12s} ({reason:8s}): {n}")
    if not shed:
        print("  no requests shed (try a higher --overload)")
    print()
    return ok


def _drive_solver_traffic(server: SpMVServer, args: argparse.Namespace) -> bool:
    """A CG solve as demo traffic: every iteration is a submit."""
    from repro.solvers import SolverSession, cg

    matrix = gen.spd_system(args.size, seed=args.seed)
    print(f"workload: CG solve on spd:{args.size} "
          f"(tolerance 1e-8, cap {args.requests} iterations)\n")
    b = np.random.default_rng(args.seed).standard_normal(matrix.ncols)
    session = SolverSession(
        matrix, server, slo=SLOTarget(p99=getattr(args, "slo_p99", 0.1)),
    )
    result = cg(session, b, tol=1e-8, max_iterations=args.requests)
    print(result.describe())
    print(session.stats().describe())
    print(session.monitor.describe())
    print()
    # Verify: the recursion residual must agree with the directly
    # recomputed one (catches corrupted iterates, e.g. under chaos).
    true_norm = float(np.linalg.norm(b - matrix @ result.x))
    drift = abs(true_norm - result.residual_norm)
    return bool(
        np.isfinite(result.x).all()
        and drift <= 1e-6 * (1.0 + float(np.linalg.norm(b)))
    )


def _cmd_solve(args: argparse.Namespace) -> int:
    """Run one iterative solve end to end through the serving layer."""
    from repro.solvers import SOLVERS, SolverSession

    matrix = load_matrix(args.matrix, seed=args.seed)
    print(f"matrix: {matrix}")
    m, n = matrix.shape
    if m != n:
        raise SystemExit(f"solvers need a square matrix, got {m}x{n}")
    server = _build_demo_server(args)
    session = SolverSession(
        matrix, server, slo=SLOTarget(p99=args.slo_p99),
    )
    try:
        if args.method == "power":
            result = SOLVERS["power"](
                session, tol=args.tol,
                max_iterations=args.max_iterations, seed=args.seed,
            )
        else:
            b = np.random.default_rng(args.seed).standard_normal(n)
            result = SOLVERS[args.method](
                session, b, tol=args.tol,
                max_iterations=args.max_iterations,
            )
    finally:
        server.close()
    print()
    print(result.describe())
    print(session.stats().describe())
    print(session.monitor.describe())
    if isinstance(server.device, ChaosDevice):
        counts = server.device.injected_counts()
        print(f"faults injected    : {sum(counts.values())}")
    if args.method != "power":
        true_norm = float(np.linalg.norm(b - matrix @ result.x))
        drift = abs(true_norm - result.residual_norm)
        ok = drift <= 1e-6 * (1.0 + float(np.linalg.norm(b)))
        print(f"residual verified  : "
              f"{'OK' if ok else 'MISMATCH'} (direct {true_norm:.3e})")
        if not ok:
            return 1
    return 0 if result.converged else 1


def _build_demo_server(args: argparse.Namespace) -> SpMVServer:
    device = resilience = None
    if getattr(args, "chaos", False):
        seed = args.chaos_seed if args.chaos_seed is not None else args.seed
        device = ChaosDevice(
            SimulatedDevice(),
            FaultSchedule(rate=args.chaos_rate, seed=seed),
        )
        # Tight backoffs keep the demo snappy; the structure (retries,
        # breaker, fallback) is what the run demonstrates.
        resilience = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=4, backoff_base=1e-4,
                              backoff_max=1e-2),
        )
        print(f"chaos: injecting faults at rate {args.chaos_rate:.0%} "
              f"(seed {seed}), resilience enabled")
    tuner = None
    if args.model:
        tuner = AutoTuner.load(args.model)
        print(f"serving with tuner {args.model}")
    else:
        print("serving with the heuristic planner (no --model given)")
    sharding = None
    n_shards = getattr(args, "shards", 0)
    if n_shards:
        strategy = PartitionStrategy(getattr(args, "shard_strategy", "nnz"))
        backend = getattr(args, "backend", "thread")
        sharding = ShardingPolicy(
            n_shards=n_shards, strategy=strategy, backend=backend,
        )
        print(f"sharding: {n_shards} shards, {strategy.value}-balanced, "
              f"{sharding.backend.value} backend")
    elif getattr(args, "backend", "thread") != "thread":
        print(f"note: --backend {args.backend} has no effect without --shards")
    scheduler = None
    if getattr(args, "coalesce", False):
        scheduler = CoalescePolicy(
            max_batch=getattr(args, "coalesce_width", 8),
            max_wait_seconds=getattr(args, "coalesce_window", 0.005),
        )
        print(f"coalescing: width <= {scheduler.max_batch}, "
              f"window {scheduler.max_wait_seconds * 1e3:.1f} ms")
    bundle_dir = getattr(args, "bundle_dir", None)
    tracing = None
    if (getattr(args, "trace", False) or getattr(args, "trace_out", None)
            or bundle_dir):
        # --bundle-dir implies tracing: exemplars need trace ids and a
        # bundle without its trace export cannot cross-check them.
        slo_p99 = getattr(args, "slo_p99", 0.1)
        tracing = TracingPolicy(slo=SLOTarget(p99=slo_p99))
        print(f"tracing: on (ring capacity {tracing.recorder_capacity}, "
              f"SLO p99 <= {slo_p99 * 1e3:.1f} ms)")
    blackbox = None
    if bundle_dir:
        from repro.blackbox import BlackboxPolicy

        # A short rate-limit interval keeps the demo responsive; a
        # production deployment would leave the 30 s default.
        blackbox = BlackboxPolicy(
            bundle_dir=bundle_dir, min_bundle_interval_seconds=1.0,
        )
        print(f"blackbox: flight recorder on (capacity "
              f"{blackbox.flight_capacity}), debug bundles -> {bundle_dir}")
    admission = None
    if getattr(args, "tenants", 0):
        # The firehose's burst covers exactly the 1x offered load, so
        # --overload 1 admits everything and --overload 2 sheds ~half
        # of the batch traffic while latency tenants stay unlimited.
        burst = float(max(1, getattr(args, "requests", 16)))
        admission = AdmissionPolicy(
            burst=max(burst, 64.0),
            tenants={
                "firehose": TenantConfig(
                    priority="batch", rate=50.0, burst=burst,
                    max_pending=32,
                ),
            },
            aging_seconds=0.05,
        )
        print(f"admission: {args.tenants} latency tenants + 'firehose' "
              f"batch tenant (50/s, burst {burst:g}, <=32 pending)")
    elif getattr(args, "overload", 1.0) != 1.0:
        print("note: --overload has no effect without --tenants")
    learning = None
    if getattr(args, "learn", False):
        learning = LearningPolicy(
            epsilon=getattr(args, "explore", 0.1),
            max_explore_fraction=getattr(args, "explore_budget", 0.2),
            seed=args.seed,
        )
        n_arms = 1 + len(learning.granularities) * len(learning.kernel_names)
        print(f"online learning: epsilon {learning.epsilon:g}, budget "
              f"{learning.max_explore_fraction:.0%} global / "
              f"{learning.max_explore_per_key} per key, {n_arms} arms")
    return SpMVServer(
        tuner,
        device=device,
        cache_capacity=args.cache_capacity,
        resilience=resilience,
        sharding=sharding,
        scheduler=scheduler,
        tracing=tracing,
        admission=admission,
        learning=learning,
        blackbox=blackbox,
    )


def _cmd_serve_demo(args: argparse.Namespace) -> int:
    """Simulate repeated + batched traffic against one server instance."""
    registry = previous = None
    if getattr(args, "metrics", False) or getattr(args, "bundle_dir", None):
        # A fresh registry per run: with --bundle-dir, the bundles'
        # metric snapshots (and their exemplar trace ids) must describe
        # *this* server, not whatever the process-global registry
        # accumulated before.
        registry = MetricsRegistry()
        previous = set_registry(registry)
    try:
        server = _build_demo_server(args)
        if getattr(args, "workload", "mixed") == "solver":
            ok = _drive_solver_traffic(server, args)
        elif getattr(args, "tenants", 0):
            ok = _drive_tenant_traffic(server, args)
        else:
            ok = _drive_demo_traffic(server, args)
        server.close()  # drain the scheduler so the stats are final
    finally:
        if registry is not None:
            set_registry(previous)
    print(server.stats().describe())
    if isinstance(server.device, ChaosDevice):
        counts = server.device.injected_counts()
        injected = ", ".join(
            f"{kind}={n}" for kind, n in sorted(counts.items())
        ) or "none"
        print(f"faults injected    : {sum(counts.values())} ({injected})")
    if registry is not None and getattr(args, "metrics", False):
        print("\n--- metrics (prometheus) ---")
        print(to_prometheus_text(registry), end="")
    if server.trace_recorder is not None:
        _report_traces(server, getattr(args, "trace_out", None))
    if server.blackbox is not None:
        bb = server.blackbox.stats()
        triggers = ", ".join(
            f"{reason}={n}" for reason, n in sorted(bb.triggers.items())
        ) or "none"
        print(f"\nblackbox: {bb.bundles_written} bundle(s) written, "
              f"{bb.bundles_suppressed} suppressed (triggers: {triggers})")
        if bb.last_bundle is not None:
            print(f"  latest: {bb.last_bundle}")
            print(f"  inspect with: python -m repro doctor "
                  f"{getattr(args, 'bundle_dir', bb.last_bundle)}")
    print(f"\nall results verified: {'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def _report_traces(server: SpMVServer, trace_out: Optional[str]) -> None:
    """Print the trace/SLO summary for a traced demo run."""
    rec = server.trace_recorder
    tids = rec.trace_ids()
    print(f"\n--- traces ({len(tids)} recorded, {rec.dropped} "
          f"dropped by the ring) ---")
    request_roots = [r for r in rec.roots() if r.name == "serve.request"]
    if request_roots:
        print("sample request timeline (last request):\n")
        print(rec.timeline(request_roots[-1].trace_id))
    _print_slo_health(server)
    if trace_out:
        Path(trace_out).write_text(rec.chrome_trace_json(indent=2))
        print(f"Chrome trace written to {trace_out} "
              f"(load via chrome://tracing or https://ui.perfetto.dev)")


def _print_slo_health(server: SpMVServer) -> None:
    """Print the SLO health snapshot, shared by ``serve-demo``/``metrics``.

    Every tracing server now carries per-class monitors (they were
    previously admission-only), so the per-class lines appear whenever
    tracing is on -- with or without ``--tenants``.
    """
    health = server.health_snapshot()
    quantiles = ", ".join(
        f"{q}={v * 1e3:.3f} ms" for q, v in health["quantiles"].items()
        if v == v  # skip NaN before any observation
    )
    breaches = ", ".join(
        f"{q}={n}" for q, n in sorted(health["breaches"].items())
    ) or "none"
    print(f"\nSLO health: {health['status']} "
          f"(window of {health['observed']}: {quantiles}; "
          f"breaches: {breaches})")
    for priority, cls in sorted(health.get("classes", {}).items()):
        print(f"  class {priority:8s}: {cls['status']} "
              f"(window of {cls['observed']})")


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Demo run under a fresh registry; dump Prometheus + JSON snapshots.

    The registry is installed as the process-global default *before* the
    server/device are built (they bind it at construction), and a
    recording sink captures structured events (cache evictions,
    overflow-bin hits, planner fallbacks).
    """
    registry = MetricsRegistry()
    sink = RecordingSink()
    registry.add_event_sink(sink)
    previous = set_registry(registry)
    try:
        server = _build_demo_server(args)
        ok = _drive_demo_traffic(server, args)
    finally:
        set_registry(previous)
    print(server.stats().describe())
    if server.trace_recorder is not None:
        _print_slo_health(server)
    if args.format in ("prometheus", "both"):
        print("\n--- metrics (prometheus) ---")
        print(to_prometheus_text(registry), end="")
    if args.format in ("json", "both"):
        print("\n--- metrics (json) ---")
        print(to_json(registry, indent=2))
    if sink.events:
        print(f"\n--- events ({len(sink.events)}) ---")
        for event in sink.events:
            print(f"  {event}")
    print(f"\nall results verified: {'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Load a debug bundle and render the incident report.

    Accepts either a bundle directory itself (``bundle-0003-slo_breach``)
    or a ``--bundle-dir`` output directory, in which case the *latest*
    complete bundle is diagnosed and the older siblings are listed for
    context.  Corrupt or partial bundles turn into a readable error on
    stderr (exit 1), never a traceback.
    """
    from repro.blackbox import (
        BundleError,
        find_bundles,
        load_bundle,
        render_report,
    )

    root = Path(args.bundle)
    try:
        if (root / "manifest.json").is_file():
            bundle = load_bundle(root)
            siblings = find_bundles(root.parent)
        elif root.is_dir():
            bundles = find_bundles(root)
            if not bundles:
                print(f"doctor: no complete debug bundles under {root}",
                      file=sys.stderr)
                return 1
            bundle = load_bundle(bundles[-1])
            siblings = bundles
            if len(bundles) > 1:
                print(f"({len(bundles)} bundles found; diagnosing the "
                      f"latest, {bundles[-1].name})\n")
        else:
            print(f"doctor: {root} is not a bundle or bundle directory",
                  file=sys.stderr)
            return 1
        print(render_report(bundle, siblings=siblings))
    except BundleError as exc:
        print(f"doctor: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Kernel-level profile of a matrix's plan on the analytical device.

    Default: profile the launches the plan would actually make (per-bin
    kernel, lane occupancy, memory/compute split, roofline efficiency).
    ``--sweep`` instead costs *every* (granularity, bin, kernel)
    combination -- the exhaustive view behind the paper's tuning tables.
    """
    from repro.serve.server import heuristic_planner

    matrix = load_matrix(args.matrix, seed=args.seed)
    print(f"matrix: {matrix}")
    profiler = KernelProfiler()
    if args.sweep:
        report = profiler.sweep(matrix)
    else:
        if args.model:
            plan = AutoTuner.load(args.model).plan(matrix)
        else:
            plan = heuristic_planner(matrix)
        print(f"plan: {plan.scheme.name}")
        report = profiler.profile_plan(matrix, plan)
    print(report.describe())
    if args.out:
        import json as _json

        Path(args.out).write_text(_json.dumps(report.as_dict(), indent=2))
        print(f"profile written to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    spec = DeviceSpec.kaveri_apu()
    print(f"simulated device: {spec.name}")
    print(f"  compute units        : {spec.num_cus}")
    print(f"  wavefront / workgroup: {spec.wavefront_size} / "
          f"{spec.workgroup_size}")
    print(f"  clock                : {spec.clock_hz / 1e6:.0f} MHz")
    print(f"  DRAM bandwidth       : {spec.mem_bandwidth_bytes / 1e9:.1f} GB/s")
    print(f"  LDS per CU           : {spec.lds_bytes_per_cu // 1024} KB")
    print(f"kernel pool ({len(DEFAULT_KERNEL_NAMES)}): "
          f"{', '.join(DEFAULT_KERNEL_NAMES)}")
    print(f"synthetic families: {', '.join(sorted(_CLI_FAMILIES))}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Auto-tuned CSR SpMV (paper reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="train and save a tuner")
    p_train.add_argument("--matrices", type=int, default=150,
                         help="synthetic corpus size (default 150)")
    p_train.add_argument("--mtx-dir", default=None,
                         help="train on Matrix Market files in this dir")
    p_train.add_argument("--out", required=True, help="output JSON path")
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--classifier", choices=("tree", "boosted"),
                         default="boosted")
    p_train.add_argument("--extended-features", action="store_true")
    p_train.add_argument("--no-single-bin", action="store_true",
                         help="strictly-paper tuning space")
    p_train.set_defaults(func=_cmd_train)

    p_plan = sub.add_parser("plan", help="print the plan for a matrix")
    p_plan.add_argument("--model", required=True)
    p_plan.add_argument("--matrix", required=True,
                        help=".mtx path or family:nrows")
    p_plan.add_argument("--seed", type=int, default=0)
    p_plan.add_argument("--oracle", action="store_true",
                        help="also run the exhaustive search")
    p_plan.set_defaults(func=_cmd_plan)

    p_run = sub.add_parser("run", help="plan + execute + compare baselines")
    p_run.add_argument("--model", required=True)
    p_run.add_argument("--matrix", required=True)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(func=_cmd_run)

    p_serve = sub.add_parser(
        "serve-demo",
        help="drive an SpMVServer with repeated + batched traffic",
    )
    p_serve.add_argument("--model", default=None,
                         help="trained tuner JSON (heuristic planner if "
                              "omitted)")
    p_serve.add_argument("--matrices", type=int, default=4,
                         help="distinct sparsity patterns in the workload")
    p_serve.add_argument("--size", type=int, default=2000,
                         help="rows per synthetic matrix")
    p_serve.add_argument("--requests", type=int, default=16,
                         help="single-RHS submissions")
    p_serve.add_argument("--batches", type=int, default=2,
                         help="batched submissions")
    p_serve.add_argument("--batch", type=int, default=8,
                         help="right-hand sides per batched submission")
    p_serve.add_argument("--cache-capacity", type=int, default=32)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--metrics", action="store_true",
                         help="also dump the metrics registry "
                              "(Prometheus text) after the run")
    p_serve.add_argument("--chaos", action="store_true",
                         help="inject seeded faults into the device and "
                              "serve through the resilience layer "
                              "(retries, breaker, serial fallback)")
    p_serve.add_argument("--chaos-rate", type=float, default=0.1,
                         help="per-execution fault probability "
                              "(default 0.1)")
    p_serve.add_argument("--chaos-seed", type=int, default=None,
                         help="fault-schedule seed (defaults to --seed)")
    p_serve.add_argument("--shards", type=int, default=0,
                         help="shard each matrix across this many "
                              "concurrent devices (0 = unsharded)")
    p_serve.add_argument("--shard-strategy", choices=("rows", "nnz"),
                         default="nnz",
                         help="row-shard balancing: equal rows or "
                              "equal non-zeros (default nnz)")
    p_serve.add_argument("--backend", choices=("inline", "thread", "process"),
                         default="thread",
                         help="shard execution backend: inline (sequential "
                              "baseline), thread (pool, GIL-bound), or "
                              "process (worker pool over shared-memory "
                              "row-blocks; default thread)")
    p_serve.add_argument("--coalesce", action="store_true",
                         help="coalesce concurrent same-matrix submits "
                              "into one multi-RHS dispatch")
    p_serve.add_argument("--coalesce-width", type=int, default=8,
                         help="max requests per coalesced dispatch "
                              "(default 8)")
    p_serve.add_argument("--coalesce-window", type=float, default=0.005,
                         help="seconds a request waits for siblings "
                              "before dispatching anyway (default 0.005)")
    p_serve.add_argument("--trace", action="store_true",
                         help="record a distributed trace per request and "
                              "print a sample timeline + SLO health")
    p_serve.add_argument("--trace-out", default=None,
                         help="write the Chrome trace-event JSON here "
                              "(implies --trace)")
    p_serve.add_argument("--slo-p99", type=float, default=0.1,
                         help="p99 latency objective in seconds for the "
                              "SLO monitor (default 0.1)")
    p_serve.add_argument("--tenants", type=int, default=0,
                         help="serve mixed-tenant traffic through the "
                              "admission front door: this many latency "
                              "tenants plus one rate-limited 'firehose' "
                              "batch tenant (0 = no admission control)")
    p_serve.add_argument("--overload", type=float, default=1.0,
                         help="scale the firehose tenant's offered load "
                              "by this factor (with --tenants; >1 "
                              "demonstrates rate/queue shedding)")
    p_serve.add_argument("--learn", action="store_true",
                         help="wrap the planner in the online selector: "
                              "seed bandit priors from the tree, explore "
                              "alternative (kernel, U) arms under a "
                              "budget, and report pulls/regret")
    p_serve.add_argument("--explore", type=float, default=0.1,
                         help="exploration rate epsilon for --learn "
                              "(default 0.1; 0 reproduces the static "
                              "tree exactly)")
    p_serve.add_argument("--explore-budget", type=float, default=0.2,
                         help="global cap on the fraction of decisions "
                              "that may explore (default 0.2)")
    p_serve.add_argument("--bundle-dir", default=None,
                         help="fly the incident flight recorder and "
                              "auto-write triggered debug bundles into "
                              "this directory (implies --trace); inspect "
                              "them with 'repro doctor'")
    p_serve.add_argument("--workload", choices=("mixed", "solver"),
                         default="mixed",
                         help="demo traffic: 'mixed' (repeated + batched "
                              "requests, default) or 'solver' (a CG solve "
                              "on an SPD system; --requests caps the "
                              "iterations)")
    p_serve.set_defaults(func=_cmd_serve_demo)

    p_solve = sub.add_parser(
        "solve",
        help="run an iterative solver end to end through the server",
    )
    p_solve.add_argument("--method",
                         choices=("cg", "bicgstab", "jacobi", "power"),
                         default="cg",
                         help="cg (SPD), bicgstab (general), jacobi "
                              "(diagonally dominant), or power "
                              "(dominant eigenpair; no rhs)")
    p_solve.add_argument("--matrix", default="spd:1000",
                         help=".mtx path or family:nrows "
                              "(default spd:1000; must be square)")
    p_solve.add_argument("--tol", type=float, default=1e-8,
                         help="relative residual tolerance (default 1e-8)")
    p_solve.add_argument("--max-iterations", type=int, default=500)
    p_solve.add_argument("--model", default=None,
                         help="trained tuner JSON (heuristic planner if "
                              "omitted)")
    p_solve.add_argument("--cache-capacity", type=int, default=32)
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--shards", type=int, default=0,
                         help="shard the matrix across this many "
                              "concurrent devices (0 = unsharded)")
    p_solve.add_argument("--shard-strategy", choices=("rows", "nnz"),
                         default="nnz")
    p_solve.add_argument("--backend",
                         choices=("inline", "thread", "process"),
                         default="thread",
                         help="shard execution backend (with --shards)")
    p_solve.add_argument("--chaos", action="store_true",
                         help="inject seeded faults mid-solve and serve "
                              "through the resilience layer")
    p_solve.add_argument("--chaos-rate", type=float, default=0.1)
    p_solve.add_argument("--chaos-seed", type=int, default=None)
    p_solve.add_argument("--slo-p99", type=float, default=0.1,
                         help="per-iteration p99 objective in seconds "
                              "(default 0.1)")
    p_solve.set_defaults(func=_cmd_solve)

    p_metrics = sub.add_parser(
        "metrics",
        help="demo run under a fresh registry; dump metric snapshots",
    )
    p_metrics.add_argument("--model", default=None,
                           help="trained tuner JSON (heuristic planner if "
                                "omitted)")
    p_metrics.add_argument("--matrices", type=int, default=4,
                           help="distinct sparsity patterns in the workload")
    p_metrics.add_argument("--size", type=int, default=2000,
                           help="rows per synthetic matrix")
    p_metrics.add_argument("--requests", type=int, default=16,
                           help="single-RHS submissions")
    p_metrics.add_argument("--batches", type=int, default=2,
                           help="batched submissions")
    p_metrics.add_argument("--batch", type=int, default=8,
                           help="right-hand sides per batched submission")
    p_metrics.add_argument("--cache-capacity", type=int, default=32)
    p_metrics.add_argument("--seed", type=int, default=0)
    p_metrics.add_argument("--trace", action="store_true",
                           help="also trace the demo traffic and print "
                                "the SLO health snapshot (overall + "
                                "per-priority-class monitors)")
    p_metrics.add_argument("--slo-p99", type=float, default=0.1,
                           help="p99 latency objective in seconds for "
                                "the SLO monitor (with --trace; "
                                "default 0.1)")
    p_metrics.add_argument("--format",
                           choices=("prometheus", "json", "both"),
                           default="both",
                           help="which snapshot(s) to print (default both)")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_doctor = sub.add_parser(
        "doctor",
        help="render the incident report for a debug bundle "
             "(or the latest bundle in a --bundle-dir directory)",
    )
    p_doctor.add_argument("bundle",
                          help="a bundle directory, or a serve-demo "
                               "--bundle-dir output directory (the latest "
                               "complete bundle is diagnosed)")
    p_doctor.set_defaults(func=_cmd_doctor)

    p_trace = sub.add_parser(
        "trace",
        help="kernel-level profile of a matrix's plan (or a full "
             "(U, bin, kernel) sweep) on the analytical device",
    )
    p_trace.add_argument("--matrix", required=True,
                         help=".mtx path or family:nrows")
    p_trace.add_argument("--model", default=None,
                         help="trained tuner JSON (heuristic planner if "
                              "omitted)")
    p_trace.add_argument("--sweep", action="store_true",
                         help="profile every (granularity, bin, kernel) "
                              "combination instead of the plan's launches")
    p_trace.add_argument("--out", default=None,
                         help="also write the profile as JSON here")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.set_defaults(func=_cmd_trace)

    p_info = sub.add_parser("info", help="device + kernel pool summary")
    p_info.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
