"""SpGEMM workload estimation.

SpMV's per-row workload is its nnz count; SpGEMM's is the FLOP count
``sum over stored A[i, k] of nnz(B[k, :])`` -- computable exactly in one
vectorised pass *before* doing any multiplication, which is what lets
the binning scheme group rows up front (exactly as Liu et al.'s binned
SpGEMM does).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.formats.csr import CSRMatrix
from repro.utils.primitives import segmented_sum

__all__ = ["estimate_row_flops"]


def estimate_row_flops(a: CSRMatrix, b: CSRMatrix) -> np.ndarray:
    """Per-row multiply counts of ``A @ B`` (length ``a.nrows``).

    This is the ESC upper bound on each output row's intermediate size
    and the exact FLOP count; rows of ``A`` whose columns hit dense rows
    of ``B`` dominate, which is the irregularity the binned SpGEMM must
    absorb.
    """
    if a.ncols != b.nrows:
        raise ShapeError(
            f"inner dimensions differ: A is {a.shape}, B is {b.shape}"
        )
    if a.nnz == 0:
        return np.zeros(a.nrows, dtype=np.int64)
    per_entry = b.row_lengths()[a.colidx].astype(np.float64)
    return segmented_sum(per_entry, a.rowptr).astype(np.int64)
