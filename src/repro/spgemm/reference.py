"""Vectorised Gustavson SpGEMM.

``C = A @ B`` by row-wise expansion: every stored entry ``A[i, k]``
contributes ``A[i, k] * B[k, :]`` to row ``i`` of ``C``.  The expansion
is computed for *all* entries at once with the repeat/within-offset
gather pattern used throughout the library, then canonicalised through
the duplicate-summing COO constructor.  Peak intermediate size equals
the FLOP count (as in any ESC-style SpGEMM), so this is exact and fast
for the moderate problem sizes the tuner trains on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.formats.csr import CSRMatrix, INDEX_DTYPE

__all__ = ["spgemm_reference", "expand_products"]


def expand_products(
    a: CSRMatrix, b: CSRMatrix, rows: np.ndarray | None = None
):
    """The Gustavson expansion for the selected rows of ``A``.

    Returns COO triplet arrays ``(out_rows, out_cols, out_vals)`` holding
    one entry per multiply (duplicates unmerged).  ``rows=None`` expands
    every row.
    """
    if a.ncols != b.nrows:
        raise ShapeError(
            f"inner dimensions differ: A is {a.shape}, B is {b.shape}"
        )
    if rows is None:
        rows = np.arange(a.nrows, dtype=INDEX_DTYPE)
    else:
        rows = np.asarray(rows, dtype=INDEX_DTYPE)

    # Selected A entries, flat.
    a_lengths = a.row_lengths()[rows]
    a_total = int(a_lengths.sum())
    if a_total == 0:
        empty_i = np.zeros(0, dtype=INDEX_DTYPE)
        return empty_i, empty_i.copy(), np.zeros(0)
    a_within = np.arange(a_total, dtype=INDEX_DTYPE) - np.repeat(
        np.cumsum(np.concatenate([[0], a_lengths[:-1]])), a_lengths
    )
    a_src = np.repeat(a.rowptr[rows], a_lengths) + a_within
    a_row_of = np.repeat(rows, a_lengths)
    a_cols = a.colidx[a_src]  # = k
    a_vals = a.val[a_src]

    # Each A entry fans out over B's row k.
    b_lengths = b.row_lengths()[a_cols]
    flops = int(b_lengths.sum())
    if flops == 0:
        empty_i = np.zeros(0, dtype=INDEX_DTYPE)
        return empty_i, empty_i.copy(), np.zeros(0)
    offsets = np.zeros(len(b_lengths) + 1, dtype=INDEX_DTYPE)
    np.cumsum(b_lengths, out=offsets[1:])
    within = np.arange(flops, dtype=INDEX_DTYPE) - np.repeat(
        offsets[:-1], b_lengths
    )
    b_src = np.repeat(b.rowptr[a_cols], b_lengths) + within
    out_rows = np.repeat(a_row_of, b_lengths)
    out_cols = b.colidx[b_src]
    out_vals = np.repeat(a_vals, b_lengths) * b.val[b_src]
    return out_rows, out_cols, out_vals


def spgemm_reference(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Exact ``A @ B`` in CSR form (duplicates merged, zeros kept).

    >>> import numpy as np
    >>> eye = CSRMatrix.identity(3)
    >>> spgemm_reference(eye, eye).equals(eye)
    True
    """
    rows, cols, vals = expand_products(a, b)
    return CSRMatrix.from_coo_arrays(
        rows, cols, vals, (a.nrows, b.ncols), sum_duplicates=True
    )
