"""Binned SpGEMM with per-bin accumulator selection.

The SpMV framework transplanted to SpGEMM, demonstrating the paper's
generalisation claim end to end:

1. **workload collection** -- per-row FLOP estimates
   (:func:`~repro.spgemm.workload.estimate_row_flops`), the SpGEMM
   analogue of Algorithm 2's step 1;
2. **binning** -- the same coarse virtual-row scheme over the FLOP
   workloads (every ``U`` adjacent rows form one virtual row);
3. **per-bin kernel selection** -- three accumulator strategies with
   analytical cost models on the shared device spec:

   - ``scalar-merge``  -- one thread walks its row's B-segments with a
     sequential sorted merge; minimal overhead, best for tiny rows,
     strided-access waste like Kernel-Serial;
   - ``sort-based``    -- ESC style: expand, segmented sort, compress;
     coalesced, ``O(f log f)`` work, the mid-range workhorse;
   - ``dense-accumulator`` -- a Gustavson SPA per row; ``O(f)`` work
     but pays an accumulator-initialisation cost growing with the output
     width, so only dense rows amortise it.

Selection is oracle-style (measure the three models, keep the best per
bin) -- the ML stage is identical to SpMV's and not duplicated here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.binning.coarse import CoarseBinning
from repro.device.executor import SimulatedDevice
from repro.device.memory import VALUE_BYTES, stream_lines, strided_waste_factor
from repro.device.spec import DeviceSpec
from repro.errors import ShapeError
from repro.formats.csr import CSRMatrix, INDEX_DTYPE
from repro.kernels.base import pad_reshape
from repro.spgemm.reference import expand_products
from repro.spgemm.workload import estimate_row_flops
from repro.utils.primitives import exclusive_scan

__all__ = [
    "ACCUMULATOR_NAMES",
    "accumulator_cost",
    "BinnedSpGEMM",
    "SpGEMMResult",
]

ACCUMULATOR_NAMES: Tuple[str, ...] = (
    "scalar-merge",
    "sort-based",
    "dense-accumulator",
)

#: Bytes touched per FLOP during expansion (A entry + B entry reads,
#: intermediate write).
_BYTES_PER_FLOP = 36.0


def accumulator_cost(
    name: str,
    flops: np.ndarray,
    out_cols: int,
    spec: DeviceSpec,
) -> float:
    """Simulated seconds for one accumulator strategy over a bin.

    ``flops`` holds the per-row multiply counts of the bin's rows (in
    launch order); ``out_cols`` is the output matrix width (the dense
    accumulator's initialisation footprint).
    """
    flops = np.asarray(flops, dtype=np.float64)
    n_rows = len(flops)
    if n_rows == 0 or flops.sum() == 0:
        return 0.0
    total = float(flops.sum())
    w = spec.wavefront_size

    if name == "scalar-merge":
        windows = pad_reshape(flops, w)
        iters = windows.max(axis=1)  # divergence, as in Kernel-Serial
        compute = float((iters * 4.0).sum())
        mean_f = total / max(n_rows, 1)
        lines = float(
            stream_lines(total * _BYTES_PER_FLOP, spec)
            * strided_waste_factor(1, mean_f, spec)
        )
        waves = len(iters)
    elif name == "sort-based":
        # Expand + segmented bitonic-ish sort + compress, all coalesced.
        logf = np.log2(np.maximum(flops, 2.0))
        compute = float((flops * (2.0 + 0.5 * logf)).sum() / w * 4.0)
        lines = float(stream_lines(total * _BYTES_PER_FLOP * 2.0, spec))
        waves = max(1, int(total // (w * 4)) + n_rows // w + 1)
    elif name == "dense-accumulator":
        # O(f) accumulation plus per-row SPA init/flush over the output
        # width (staged through LDS when it fits, global otherwise).
        compute = float(total * 2.0 / w * 4.0)
        spa_bytes = out_cols * VALUE_BYTES
        in_lds = spa_bytes <= spec.lds_bytes_per_cu
        init_lines = 0.0 if in_lds else float(
            n_rows * stream_lines(spa_bytes, spec)
        )
        init_instr = float(n_rows * out_cols / w * (0.5 if in_lds else 1.0))
        compute += init_instr
        lines = float(stream_lines(total * _BYTES_PER_FLOP, spec)) + init_lines
        waves = max(1, n_rows)
    else:
        raise ValueError(
            f"unknown accumulator {name!r}; expected one of "
            f"{list(ACCUMULATOR_NAMES)}"
        )

    # Same roofline combine as the SpMV dispatch model, simplified.
    issue = spec.issue_rate
    t_compute = compute / issue
    t_mem = lines * spec.cacheline_bytes / spec.bytes_per_cycle
    primary = max(t_compute, t_mem)
    secondary = t_compute + t_mem - primary
    cycles = primary + spec.overlap_penalty * secondary
    cycles += waves / spec.num_cus * 4.0
    return spec.seconds(cycles)


@dataclass(frozen=True)
class SpGEMMResult:
    """Outcome of one binned SpGEMM."""

    c: CSRMatrix
    seconds: float
    #: ``bin_id -> (strategy name, simulated seconds)``.
    bin_strategies: Dict[int, Tuple[str, float]]
    binning_overhead: float

    @property
    def n_launches(self) -> int:
        """Kernel launches the plan needed."""
        return len(self.bin_strategies)


class BinnedSpGEMM:
    """SpGEMM with FLOP-binned rows and per-bin accumulator choice."""

    def __init__(
        self,
        *,
        u: int = 100,
        device: Optional[SimulatedDevice] = None,
    ):
        self.u = int(u)
        self.device = device if device is not None else SimulatedDevice()

    def _workload_proxy(self, flops: np.ndarray) -> CSRMatrix:
        """A pointer-only CSR whose row lengths equal the FLOP counts.

        Lets the existing :class:`CoarseBinning` (which reads only
        ``rowptr``) group rows by SpGEMM workload unchanged.
        """
        rowptr = exclusive_scan(flops.astype(np.int64))
        nnz = int(rowptr[-1])
        return CSRMatrix(
            rowptr,
            np.zeros(nnz, dtype=INDEX_DTYPE),
            np.zeros(nnz),
            (len(flops), 1),
        )

    def multiply(self, a: CSRMatrix, b: CSRMatrix) -> SpGEMMResult:
        """Compute ``A @ B`` with the binned, per-bin-tuned strategy."""
        if a.ncols != b.nrows:
            raise ShapeError(
                f"inner dimensions differ: A is {a.shape}, B is {b.shape}"
            )
        spec = self.device.spec
        flops = estimate_row_flops(a, b)
        proxy = self._workload_proxy(flops)
        scheme = CoarseBinning(self.u)
        binning = scheme.bin_rows(proxy)
        overhead = scheme.overhead_seconds(proxy, spec)

        rows_all, cols_all, vals_all = [], [], []
        strategies: Dict[int, Tuple[str, float]] = {}
        total = overhead
        launch_s = spec.seconds(spec.kernel_launch_cycles)
        for bin_id, rows in binning.non_empty():
            bin_flops = flops[rows]
            if bin_flops.sum() == 0:
                continue  # all-empty output rows: nothing to launch
            best_name, best_t = None, np.inf
            for name in ACCUMULATOR_NAMES:
                t = accumulator_cost(name, bin_flops, b.ncols, spec)
                if t < best_t:
                    best_name, best_t = name, t
            strategies[bin_id] = (best_name, best_t)
            total += best_t + launch_s
            r, c, v = expand_products(a, b, rows)
            rows_all.append(r)
            cols_all.append(c)
            vals_all.append(v)

        if rows_all:
            c_mat = CSRMatrix.from_coo_arrays(
                np.concatenate(rows_all),
                np.concatenate(cols_all),
                np.concatenate(vals_all),
                (a.nrows, b.ncols),
                sum_duplicates=True,
            )
        else:
            c_mat = CSRMatrix.empty((a.nrows, b.ncols))
        return SpGEMMResult(
            c=c_mat,
            seconds=float(total),
            bin_strategies=strategies,
            binning_overhead=float(overhead),
        )
