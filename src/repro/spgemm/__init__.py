"""Sparse x sparse matrix multiplication (SpGEMM) with binned tuning.

The paper states its framework "can be directly applied to other
kernels with different potential implementations for different inputs"
and names SpGEMM explicitly (§I, §VI); its related work discusses Liu et
al.'s hybrid-binned SpGEMM.  This subpackage demonstrates that
generalisation:

- :mod:`repro.spgemm.reference` -- a vectorised Gustavson (row-wise)
  SpGEMM producing exact CSR results;
- :mod:`repro.spgemm.workload` -- per-row FLOP estimation (the SpGEMM
  analogue of nnz-per-row workloads; upper bound = exact for duplicates
  not yet merged);
- :mod:`repro.spgemm.tuned` -- binning rows of ``A`` by estimated FLOPs
  (reusing the paper's coarse virtual-row scheme) and selecting one of
  three accumulator strategies per bin (scalar merge / sort-based /
  dense accumulator), each with an analytical cost model on the shared
  device spec.
"""

from repro.spgemm.reference import spgemm_reference
from repro.spgemm.tuned import (
    ACCUMULATOR_NAMES,
    BinnedSpGEMM,
    SpGEMMResult,
    accumulator_cost,
)
from repro.spgemm.workload import estimate_row_flops

__all__ = [
    "spgemm_reference",
    "estimate_row_flops",
    "BinnedSpGEMM",
    "SpGEMMResult",
    "ACCUMULATOR_NAMES",
    "accumulator_cost",
]
