"""Batched plan execution: one tuned plan, many right-hand sides.

Multi-RHS batching is the standard throughput lever for repeated SpMV
traffic: the matrix (and its plan) is read once per *batch* instead of
once per *vector*, so the bandwidth-bound matrix traffic and all
per-launch overheads amortise over ``k`` columns.  This module runs one
:class:`~repro.core.plan.ExecutionPlan` against an ``(ncols, k)`` block
on either backend:

- the :class:`~repro.device.executor.SimulatedDevice`, via
  :meth:`~repro.device.executor.SimulatedDevice.run_spmm` (plan charged
  once, bandwidth terms scaled by ``k``);
- the real :class:`~repro.device.cpu.CPUExecutor`, via its
  gather + ``reduceat`` SpMM path (wall-clock measured).

Column ``j`` of every batched result is bit-identical to the
single-vector execution on ``X[:, j]`` -- the differential suite pins
this down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.core.plan import ExecutionPlan
from repro.device.cpu import CPUExecutor, PartitionStrategy
from repro.device.executor import SimulatedDevice, SpMMResult, SpMVResult
from repro.formats.csr import CSRMatrix
from repro.utils.validation import check_spmm_operand

__all__ = [
    "run_plan_spmv",
    "run_plan_spmm",
    "cpu_batch_spmm",
    "iter_column_blocks",
    "CPUBatchResult",
]


def run_plan_spmv(
    device: SimulatedDevice,
    matrix: CSRMatrix,
    v: np.ndarray,
    plan: ExecutionPlan,
) -> SpMVResult:
    """Execute a plan for one RHS, charging its binning overhead."""
    overhead = plan.scheme.overhead_seconds(matrix, device.spec)
    return device.run_spmv(matrix, v, plan.dispatches(),
                           extra_seconds=overhead)


def run_plan_spmm(
    device: SimulatedDevice,
    matrix: CSRMatrix,
    dense: np.ndarray,
    plan: ExecutionPlan,
    *,
    max_rhs: Optional[int] = None,
) -> SpMMResult:
    """Execute a plan against a multi-RHS block.

    The binning overhead is paid once for the whole block -- the plan is
    inspected once however wide the batch is.  Kernel launches are paid
    once per *pass*: without ``max_rhs`` (or when ``k <= max_rhs``) the
    whole block is one pass and launches amortise fully; with a cap the
    block is split into column blocks, and every block is physically a
    separate dispatch sequence that re-pays the plan's launches.  That
    per-pass charge is deliberate -- a capped-width device cannot launch
    one kernel over columns it never holds -- and is surfaced as
    ``SpMMResult.n_passes``.
    """
    dense = check_spmm_operand(matrix.ncols, dense)
    overhead = plan.scheme.overhead_seconds(matrix, device.spec)
    k = dense.shape[1]
    if max_rhs is None or k <= max_rhs:
        return device.run_spmm(matrix, dense, plan.dispatches(),
                               extra_seconds=overhead)
    if max_rhs <= 0:
        raise ValueError(f"max_rhs must be > 0, got {max_rhs}")
    U = np.zeros((matrix.nrows, k))
    seconds = overhead
    dispatch_times: list[float] = []
    launch_s = 0.0
    n_passes = 0
    for lo, hi in iter_column_blocks(k, max_rhs):
        res = device.run_spmm(matrix, dense[:, lo:hi], plan.dispatches())
        U[:, lo:hi] = res.U
        seconds += res.seconds
        dispatch_times.extend(res.dispatch_seconds)
        launch_s += res.launch_seconds
        n_passes += 1
    return SpMMResult(
        U=U,
        seconds=float(seconds),
        dispatch_seconds=tuple(dispatch_times),
        launch_seconds=launch_s,
        n_rhs=k,
        n_passes=n_passes,
    )


def iter_column_blocks(k: int, width: int) -> Iterator[tuple[int, int]]:
    """Yield ``[lo, hi)`` column ranges of at most ``width`` columns."""
    if width <= 0:
        raise ValueError(f"width must be > 0, got {width}")
    for lo in range(0, k, width):
        yield lo, min(lo + width, k)


@dataclass(frozen=True)
class CPUBatchResult:
    """Outcome of one wall-clock batched execution on the host CPU."""

    U: np.ndarray
    #: Measured wall seconds for the whole block.
    seconds: float
    n_rhs: int


def cpu_batch_spmm(
    executor: CPUExecutor,
    matrix: CSRMatrix,
    dense: np.ndarray,
    *,
    strategy: PartitionStrategy = PartitionStrategy.NNZ,
) -> CPUBatchResult:
    """Run a multi-RHS block on the real CPU executor, timed.

    The thread pool partitions rows exactly as for single-vector SpMV;
    each chunk computes all ``k`` columns in one gather + ``reduceat``
    pass, so the matrix is streamed once per batch.
    """
    t0 = time.perf_counter()
    U = executor.spmm(matrix, dense, strategy=strategy)
    return CPUBatchResult(
        U=U, seconds=time.perf_counter() - t0, n_rhs=dense.shape[1]
    )
