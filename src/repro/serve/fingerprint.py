"""Structural matrix fingerprints: recognise a sparsity pattern cheaply.

Everything the planner decides -- binning scheme, per-bin kernels,
partition boundaries -- depends only on the matrix *structure*
(``rowptr``/``colidx`` and the shape), never on the stored values.  Two
matrices with the same pattern therefore share one
:class:`~repro.core.plan.ExecutionPlan`, which is exactly what lets a
serving layer amortise tuning cost across repeated traffic (the
inspector--executor trade-off): fingerprint once, plan once, execute
many times.

The fingerprint is a BLAKE2b digest over the raw index arrays plus the
shape.  Hashing is a single sequential pass at memcpy speed -- orders of
magnitude cheaper than feature extraction + classifier consultation +
binning, which is the work a cache hit skips.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.formats.csr import CSRMatrix

__all__ = [
    "MatrixFingerprint",
    "fingerprint_matrix",
    "FingerprintCache",
    "FingerprintCacheStats",
]

#: Digest width in bytes; 16 (128 bits) makes accidental collisions
#: across any realistic working set vanishingly unlikely.
_DIGEST_SIZE = 16


@dataclass(frozen=True)
class MatrixFingerprint:
    """Hashable identity of one sparsity pattern.

    Shape and nnz ride along undigested: they make collisions across
    differently-sized matrices structurally impossible, give the cache
    human-readable keys, and let stats report what was cached.
    """

    digest: str
    shape: Tuple[int, int]
    nnz: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.shape[0]}x{self.shape[1]}/{self.nnz}:{self.digest[:8]}"


def fingerprint_matrix(matrix: CSRMatrix) -> MatrixFingerprint:
    """Hash the structure (not the values) of ``matrix``.

    Equal fingerprints <=> identical ``shape``, ``rowptr`` and
    ``colidx``.  The value array deliberately never enters the hash:
    iterative solvers re-submit the same pattern with evolving values on
    every step, and those calls must all hit the same cached plan.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    m, n = matrix.shape
    h.update(np.int64(m).tobytes())
    h.update(np.int64(n).tobytes())
    # rowptr/colidx are canonical contiguous int64 by CSRMatrix
    # construction, so the byte stream is deterministic.
    h.update(matrix.rowptr.tobytes())
    h.update(matrix.colidx.tobytes())
    return MatrixFingerprint(
        digest=h.hexdigest(), shape=(m, n), nnz=matrix.nnz
    )


@dataclass(frozen=True)
class FingerprintCacheStats:
    """Point-in-time accounting of one :class:`FingerprintCache`."""

    #: Full structural hashes actually computed.
    hashes: int
    #: Requests served from the object-identity fast path (no hashing).
    identity_hits: int
    #: Explicit invalidations honoured.
    invalidations: int
    #: Live entries (weak refs prune automatically on GC).
    size: int

    @property
    def hit_rate(self) -> float:
        """Identity-hit rate over all fingerprint requests."""
        total = self.hashes + self.identity_hits
        return self.identity_hits / total if total else 0.0


class FingerprintCache:
    """Object-identity fast path in front of :func:`fingerprint_matrix`.

    PR 5's stage breakdown measured fingerprinting at ~21% of the
    unsharded wall per request -- pure waste for solver traffic, which
    re-submits the *same matrix object* every iteration.  This cache
    keys by ``id(matrix)`` and returns the memoised structural
    fingerprint when three identity checks all hold: the weak ref still
    points at this exact object, and the ``rowptr``/``colidx`` array
    *objects* are unchanged (a structure swapped in place via new
    arrays misses and re-hashes).

    Correctness notes:

    - The fingerprint is structure-only by design, so in-place *value*
      mutation does not stale it -- every consumer of values reads the
      live array (the direct path executes on ``matrix.val`` directly;
      the process backend re-copies values into shared memory per
      lease; the coalescing scheduler digests values fresh per submit).
    - ``id()`` reuse after garbage collection is defused twice over:
      a weakref finalizer drops the entry when the matrix dies, and the
      stored-ref identity check rejects any new tenant of a recycled id.
    - :class:`~repro.formats.csr.CSRMatrix` is a frozen dataclass with
      ndarray fields -- unhashable, so ``WeakKeyDictionary`` cannot hold
      it; the id-keyed dict plus finalizer is the equivalent shape.

    Thread-safe; ``invalidate`` forces the next fingerprint of that
    object to re-hash (the belt-and-braces hook for callers that
    rebuilt a matrix's arrays in place).
    """

    def __init__(self):
        self._lock = threading.Lock()
        #: id(matrix) -> (weakref, rowptr obj, colidx obj, fingerprint)
        self._entries: Dict[int, tuple] = {}
        self._hashes = 0
        self._identity_hits = 0
        self._invalidations = 0

    def fingerprint(self, matrix: CSRMatrix) -> MatrixFingerprint:
        """Memoised :func:`fingerprint_matrix` keyed by object identity."""
        key = id(matrix)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                ref, rowptr, colidx, fp = entry
                if (ref() is matrix and rowptr is matrix.rowptr
                        and colidx is matrix.colidx):
                    self._identity_hits += 1
                    return fp
        fp = fingerprint_matrix(matrix)
        try:
            ref = weakref.ref(matrix, lambda _r, k=key: self._evict(k))
        except TypeError:  # pragma: no cover - non-weakref-able subclass
            with self._lock:
                self._hashes += 1
            return fp
        with self._lock:
            self._hashes += 1
            self._entries[key] = (ref, matrix.rowptr, matrix.colidx, fp)
        return fp

    def _evict(self, key: int) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def invalidate(self, matrix: CSRMatrix) -> bool:
        """Drop the entry for this object; next fingerprint re-hashes."""
        with self._lock:
            dropped = self._entries.pop(id(matrix), None) is not None
            if dropped:
                self._invalidations += 1
            return dropped

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> FingerprintCacheStats:
        """Immutable snapshot of the cache counters."""
        with self._lock:
            return FingerprintCacheStats(
                hashes=self._hashes,
                identity_hits=self._identity_hits,
                invalidations=self._invalidations,
                size=len(self._entries),
            )
