"""Structural matrix fingerprints: recognise a sparsity pattern cheaply.

Everything the planner decides -- binning scheme, per-bin kernels,
partition boundaries -- depends only on the matrix *structure*
(``rowptr``/``colidx`` and the shape), never on the stored values.  Two
matrices with the same pattern therefore share one
:class:`~repro.core.plan.ExecutionPlan`, which is exactly what lets a
serving layer amortise tuning cost across repeated traffic (the
inspector--executor trade-off): fingerprint once, plan once, execute
many times.

The fingerprint is a BLAKE2b digest over the raw index arrays plus the
shape.  Hashing is a single sequential pass at memcpy speed -- orders of
magnitude cheaper than feature extraction + classifier consultation +
binning, which is the work a cache hit skips.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.formats.csr import CSRMatrix

__all__ = ["MatrixFingerprint", "fingerprint_matrix"]

#: Digest width in bytes; 16 (128 bits) makes accidental collisions
#: across any realistic working set vanishingly unlikely.
_DIGEST_SIZE = 16


@dataclass(frozen=True)
class MatrixFingerprint:
    """Hashable identity of one sparsity pattern.

    Shape and nnz ride along undigested: they make collisions across
    differently-sized matrices structurally impossible, give the cache
    human-readable keys, and let stats report what was cached.
    """

    digest: str
    shape: Tuple[int, int]
    nnz: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.shape[0]}x{self.shape[1]}/{self.nnz}:{self.digest[:8]}"


def fingerprint_matrix(matrix: CSRMatrix) -> MatrixFingerprint:
    """Hash the structure (not the values) of ``matrix``.

    Equal fingerprints <=> identical ``shape``, ``rowptr`` and
    ``colidx``.  The value array deliberately never enters the hash:
    iterative solvers re-submit the same pattern with evolving values on
    every step, and those calls must all hit the same cached plan.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    m, n = matrix.shape
    h.update(np.int64(m).tobytes())
    h.update(np.int64(n).tobytes())
    # rowptr/colidx are canonical contiguous int64 by CSRMatrix
    # construction, so the byte stream is deterministic.
    h.update(matrix.rowptr.tobytes())
    h.update(matrix.colidx.tobytes())
    return MatrixFingerprint(
        digest=h.hexdigest(), shape=(m, n), nnz=matrix.nnz
    )
