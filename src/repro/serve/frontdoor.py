"""Multi-tenant front door: admission control, priorities, shedding.

The serving stack behind :class:`~repro.serve.server.SpMVServer` treats
every request as one anonymous stream; under heavy multi-tenant traffic
that is exactly wrong -- one hot tenant can fill the coalesce window,
starve everyone else's deadline and turn a shared service into that
tenant's private device.  This module is the traffic layer in front of
the serving hot path:

- :class:`TokenBucket` -- per-tenant rate limiting with an injectable
  clock.  Exact refill arithmetic (no background thread, no sleeps):
  the bucket lazily refills ``elapsed * rate`` tokens, capped at
  ``burst``, on every acquire.
- :class:`AgingQueue` -- two priority classes (``latency`` strictly
  before ``batch``) with *aging*: a batch request that has waited
  ``aging_seconds`` is promoted into the latency class (ordered by its
  original arrival), so strict priority cannot starve batch traffic
  forever.
- :func:`fair_allocation` -- deterministic round-robin slot assignment
  across tenants, the rule both the coalescing scheduler and the load
  simulator use so no coalesce group is monopolised by one tenant.
- :class:`FrontDoor` -- ties the above behind ``admit()``/``release()``:
  per-tenant pending bound, deadline feasibility check, then the
  token-bucket debit (last, so shed requests never burn rate budget),
  all atomically, with every rejection accounted in a
  ``frontdoor_shed_total{tenant,reason}`` metric.

Everything here is deliberately *synchronous and clock-injectable*: the
whole layer can be driven second-by-simulated-second from a test or the
:mod:`repro.bench.loadgen` harness with zero wall-clock dependence, so
overload behaviour is provable rather than flaky.
"""

from __future__ import annotations

import itertools
import math
import threading
from collections import deque
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    TenantRateLimitError,
)
from repro.observe.registry import MetricsRegistry, get_registry

__all__ = [
    "PRIORITIES",
    "DEFAULT_TENANT",
    "TokenBucket",
    "QueueItem",
    "AgingQueue",
    "fair_allocation",
    "TenantConfig",
    "AdmissionPolicy",
    "AdmissionTicket",
    "TenantStats",
    "FrontDoorStats",
    "FrontDoor",
]

#: The two priority classes, in strict dequeue order.
PRIORITIES = ("latency", "batch")

#: Tenant requests are attributed to when the caller names none.
DEFAULT_TENANT = "default"

#: Shed reasons, as they appear in the ``frontdoor_shed_total`` metric.
SHED_REASONS = ("rate", "queue", "deadline")

Clock = Callable[[], float]


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
class TokenBucket:
    """Classic token bucket with lazy, exact refill.

    Parameters
    ----------
    rate:
        Tokens added per second.  ``math.inf`` disables limiting (every
        acquire succeeds); ``0`` means the bucket never refills past
        its initial ``burst``.
    burst:
        Capacity: the most tokens the bucket ever holds, and the size
        of the burst a previously-idle tenant may send at once.
    clock:
        Monotonic time source.  Injectable so tests and the load
        simulator can drive refill deterministically.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_lock", "_clock")

    def __init__(self, rate: float, burst: float, *,
                 clock: Clock = monotonic):
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()
        self._clock = clock

    def _refill(self, now: float) -> None:
        # A clock that steps backwards (shared fake clocks get reset in
        # tests) must not mint negative elapsed time.
        elapsed = max(0.0, now - self._last)
        self._last = now
        if self.rate == math.inf:
            self._tokens = self.burst
        else:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (and no change) if not."""
        if tokens <= 0:
            raise ValueError(f"tokens must be > 0, got {tokens}")
        with self._lock:
            self._refill(self._clock())
            if self._tokens + 1e-12 >= tokens:  # tolerate float refill dust
                self._tokens = min(self._tokens - tokens, self.burst)
                return True
            return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 if already are)."""
        with self._lock:
            self._refill(self._clock())
            missing = tokens - self._tokens
            if missing <= 0:
                return 0.0
            if self.rate == 0:
                return math.inf
            return missing / self.rate

    @property
    def tokens(self) -> float:
        """Current token count (refilled to now)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


# ----------------------------------------------------------------------
# Priority queue with aging
# ----------------------------------------------------------------------
@dataclass
class QueueItem:
    """One queued request, as the aging queue orders it."""

    tenant: str
    priority: str
    enqueued_at: float
    seq: int
    payload: Any = None

    def aged(self, now: float, aging_seconds: float) -> bool:
        """True when a batch item has waited long enough to promote."""
        return (self.priority == "batch"
                and now - self.enqueued_at >= aging_seconds)


class AgingQueue:
    """Strict-priority dequeue (``latency`` first) with batch aging.

    Ordering rule at ``pop()`` time: an item's *effective* class is
    ``latency`` if it arrived as latency traffic **or** it is a batch
    item that has waited at least ``aging_seconds``; within an
    effective class, items leave in arrival (``seq``) order.  Because
    promotion is by original arrival order, an aged batch request
    outranks every *later* arrival -- including later latency traffic
    -- so its remaining wait is bounded by the queue depth at the
    moment it ages, not by the arrival rate of high-priority traffic.
    """

    def __init__(self, *, aging_seconds: float = math.inf,
                 clock: Clock = monotonic):
        if aging_seconds < 0:
            raise ValueError(
                f"aging_seconds must be >= 0, got {aging_seconds}"
            )
        self.aging_seconds = float(aging_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._latency: deque[QueueItem] = deque()
        self._batch: deque[QueueItem] = deque()
        #: Aged batch items, already pulled ahead of ``_batch``.
        self._promoted: deque[QueueItem] = deque()

    def push(self, tenant: str, priority: str, payload: Any = None,
             *, now: Optional[float] = None) -> QueueItem:
        """Enqueue one request; returns its queue record."""
        if priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        item = QueueItem(
            tenant=tenant,
            priority=priority,
            enqueued_at=self._clock() if now is None else now,
            seq=next(self._seq),
            payload=payload,
        )
        with self._lock:
            (self._latency if priority == "latency" else self._batch).append(
                item
            )
        return item

    def _promote_aged(self, now: float) -> None:
        # Batch arrivals are FIFO, so the aged items are exactly a
        # prefix of the batch deque; promotion preserves seq order.
        while self._batch and self._batch[0].aged(now, self.aging_seconds):
            self._promoted.append(self._batch.popleft())

    def pop(self, *, now: Optional[float] = None) -> Optional[QueueItem]:
        """Dequeue the next request per the aging-priority rule."""
        with self._lock:
            t = self._clock() if now is None else now
            self._promote_aged(t)
            # Effective latency class: merge true-latency and promoted
            # items in arrival order.
            if self._latency and self._promoted:
                head = (self._latency
                        if self._latency[0].seq < self._promoted[0].seq
                        else self._promoted)
                return head.popleft()
            if self._latency:
                return self._latency.popleft()
            if self._promoted:
                return self._promoted.popleft()
            if self._batch:
                return self._batch.popleft()
            return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._latency) + len(self._promoted) + len(self._batch)

    def depth(self, priority: str) -> int:
        """Queued items of one *arrival* priority (promoted still batch)."""
        with self._lock:
            if priority == "latency":
                return len(self._latency)
            return len(self._promoted) + len(self._batch)


# ----------------------------------------------------------------------
# Fair slot allocation
# ----------------------------------------------------------------------
def fair_allocation(
    demands: Mapping[str, int],
    width: int,
    *,
    start: int = 0,
) -> Dict[str, int]:
    """Round-robin ``width`` slots across tenants with pending demand.

    The fairness rule shared by the coalescing scheduler (group
    composition) and the load simulator: cycle through the tenants in
    the mapping's iteration order (rotated by ``start`` so remainder
    slots do not always favour the same tenant), granting one slot per
    turn to every tenant with remaining demand, until the slots or the
    demand run out.

    Guarantees (pinned by the property tests):

    - ``sum(alloc) == min(width, sum(demands))`` -- no slot is wasted
      while demand remains;
    - when every tenant demands at least its equal share, each receives
      ``width // n`` or ``width // n + 1`` slots (within one of
      ``width / n``);
    - a tenant with unbounded demand cannot push any other tenant below
      ``min(demand, width // n_active)`` -- the fair floor.
    """
    if width < 0:
        raise ValueError(f"width must be >= 0, got {width}")
    active = [(t, d) for t, d in demands.items() if d > 0]
    alloc = {t: 0 for t, _ in active}
    if not active or width == 0:
        return alloc
    order = [t for t, _ in active]
    rotation = start % len(order)
    order = order[rotation:] + order[:rotation]
    remaining = dict(active)
    left = width
    while left > 0:
        granted = False
        for tenant in order:
            if left == 0:
                break
            if remaining[tenant] > 0:
                remaining[tenant] -= 1
                alloc[tenant] += 1
                left -= 1
                granted = True
        if not granted:  # all demand satisfied
            break
    return alloc


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant overrides of the admission defaults.

    ``rate``/``burst`` bound the tenant's token bucket; ``priority`` is
    the class its requests ride in unless a submit overrides it;
    ``max_pending`` bounds this tenant's in-flight admitted requests
    (falling back to the policy-wide default when ``None``).
    """

    rate: Optional[float] = None
    burst: Optional[float] = None
    priority: str = "latency"
    max_pending: Optional[int] = None

    def __post_init__(self) -> None:
        if self.priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, "
                f"got {self.priority!r}"
            )
        if self.rate is not None and self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.burst is not None and self.burst <= 0:
            raise ValueError(f"burst must be > 0, got {self.burst}")
        if self.max_pending is not None and self.max_pending <= 0:
            raise ValueError(
                f"max_pending must be > 0, got {self.max_pending}"
            )


@dataclass(frozen=True)
class AdmissionPolicy:
    """One object configuring the whole front door.

    ``SpMVServer(admission=AdmissionPolicy(...))`` turns the traffic
    layer on (same knob pattern as ``resilience=`` / ``tracing=``); no
    policy keeps the hot path anonymous and admission-free.

    Parameters
    ----------
    rate:
        Default per-tenant token refill rate (requests/second).
        ``math.inf`` (the default) means unknown tenants are not rate
        limited -- set it to a finite value to cap everyone.
    burst:
        Default bucket capacity (burst size) per tenant.
    tenants:
        Per-tenant :class:`TenantConfig` overrides, keyed by name.
    max_pending_per_tenant:
        Most admitted-but-unfinished requests one tenant may hold; one
        more sheds with :class:`~repro.errors.QueueFullError` naming
        the tenant.
    aging_seconds:
        Wait after which a queued batch request is promoted into the
        latency class (see :class:`AgingQueue`).  ``math.inf`` disables
        aging (pure strict priority).
    service_estimate:
        Estimated seconds to serve one request, used by the deadline
        feasibility check: a request whose remaining budget is below
        ``service_estimate * (queue_depth + 1)`` cannot make its
        deadline and is shed *now* (cheaper than serving it late).
        ``0`` only sheds requests whose budget is already negative.
    fair_coalescing:
        When True the server passes tenants through to the coalescing
        scheduler so group slots are :func:`fair_allocation`-balanced.
    """

    rate: float = math.inf
    burst: float = 64.0
    tenants: Mapping[str, TenantConfig] = field(default_factory=dict)
    max_pending_per_tenant: int = 256
    aging_seconds: float = 0.05
    service_estimate: float = 0.0
    fair_coalescing: bool = True

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.burst <= 0:
            raise ValueError(f"burst must be > 0, got {self.burst}")
        if self.max_pending_per_tenant <= 0:
            raise ValueError(
                f"max_pending_per_tenant must be > 0, "
                f"got {self.max_pending_per_tenant}"
            )
        if self.aging_seconds < 0:
            raise ValueError(
                f"aging_seconds must be >= 0, got {self.aging_seconds}"
            )
        if self.service_estimate < 0:
            raise ValueError(
                f"service_estimate must be >= 0, got {self.service_estimate}"
            )

    def tenant_config(self, tenant: str) -> TenantConfig:
        """The effective (defaults-filled) config for one tenant."""
        cfg = self.tenants.get(tenant, TenantConfig())
        return TenantConfig(
            rate=self.rate if cfg.rate is None else cfg.rate,
            burst=self.burst if cfg.burst is None else cfg.burst,
            priority=cfg.priority,
            max_pending=(self.max_pending_per_tenant
                         if cfg.max_pending is None else cfg.max_pending),
        )


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionTicket:
    """Proof of admission: pass it back to ``release`` when served."""

    tenant: str
    priority: str
    admitted_at: float
    #: Absolute deadline on the front door's clock; ``None`` = no bound.
    deadline: Optional[float]
    seq: int


@dataclass(frozen=True)
class TenantStats:
    """One tenant's admission accounting."""

    admitted: int
    shed: Dict[str, int]
    pending: int

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())


@dataclass(frozen=True)
class FrontDoorStats:
    """Point-in-time snapshot of the front door's accounting."""

    admitted: int
    shed: int
    tenants: Dict[str, TenantStats]

    def describe(self) -> str:
        """Readable per-tenant summary (CLI / logs)."""
        lines = [
            f"admitted           : {self.admitted} "
            f"({self.shed} shed)",
        ]
        for name in sorted(self.tenants):
            t = self.tenants[name]
            sheds = ", ".join(
                f"{reason}={n}" for reason, n in sorted(t.shed.items()) if n
            ) or "none"
            lines.append(
                f"  {name:<16s} : {t.admitted} admitted, "
                f"{t.shed_total} shed ({sheds}), {t.pending} pending"
            )
        return "\n".join(lines)


class FrontDoor:
    """Admission control in front of the serving hot path.

    ``admit()`` applies three checks in order, atomically under one
    lock acquisition (concurrent admits never race on the pending
    count), each shedding with its own exception and a
    ``frontdoor_shed_total{tenant,reason}`` count:

    1. **queue** -- the tenant is at its pending bound:
       :class:`~repro.errors.QueueFullError` naming the tenant (reason
       ``queue``);
    2. **deadline** -- the request's budget cannot cover the estimated
       queue-ahead service time:
       :class:`~repro.errors.DeadlineExceededError` (reason
       ``deadline``).  Shedding an infeasible request *at admission*
       is the whole point: serving it late costs capacity that a
       feasible request could have used;
    3. **rate** -- the tenant's token bucket has no token:
       :class:`~repro.errors.TenantRateLimitError` (reason ``rate``).
       The token is debited *last*, so a request shed on the queue or
       deadline check never burns rate budget.

    Admitted requests receive an :class:`AdmissionTicket`; the caller
    must ``release`` it when the request finishes (success or failure)
    so the pending accounting stays truthful.  The optional
    :attr:`queue` orders admitted work for pull-based dispatchers (the
    load simulator; the in-process server serves synchronously and
    only uses admit/release).
    """

    def __init__(
        self,
        policy: AdmissionPolicy = AdmissionPolicy(),
        *,
        clock: Clock = monotonic,
        registry: Optional[MetricsRegistry] = None,
        on_shed: Optional[Callable[[str, str], None]] = None,
    ):
        self.policy = policy
        self.clock = clock
        self.registry = get_registry() if registry is None else registry
        #: Optional hook invoked as ``on_shed(tenant, reason)`` after
        #: every shed is accounted (the blackbox's shed-spike detector
        #: hangs here).  Called outside the front door's lock.
        self.on_shed = on_shed
        self.queue = AgingQueue(
            aging_seconds=policy.aging_seconds, clock=clock
        )
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._buckets: Dict[str, TokenBucket] = {}
        self._pending: Dict[str, int] = {}
        self._admitted: Dict[str, int] = {}
        self._shed: Dict[Tuple[str, str], int] = {}
        self._m_admitted: Dict[Tuple[str, str], Any] = {}
        self._m_shed: Dict[Tuple[str, str], Any] = {}

    # -- metric instruments (lazily per label set) -----------------------
    def _admitted_counter(self, tenant: str, priority: str):
        key = (tenant, priority)
        counter = self._m_admitted.get(key)
        if counter is None:
            counter = self.registry.counter(
                "frontdoor_admitted_total",
                {"tenant": tenant, "priority": priority},
                help_text="Requests admitted through the front door.",
            )
            self._m_admitted[key] = counter
        return counter

    def _shed_counter(self, tenant: str, reason: str):
        key = (tenant, reason)
        counter = self._m_shed.get(key)
        if counter is None:
            counter = self.registry.counter(
                "frontdoor_shed_total",
                {"tenant": tenant, "reason": reason},
                help_text="Requests shed at the front door, by reason.",
            )
            self._m_shed[key] = counter
        return counter

    def _record_shed(self, tenant: str, reason: str) -> None:
        with self._lock:
            self._shed[(tenant, reason)] = (
                self._shed.get((tenant, reason), 0) + 1
            )
        self._shed_counter(tenant, reason).inc()
        if self.on_shed is not None:
            self.on_shed(tenant, reason)

    # -- admission -------------------------------------------------------
    def _bucket(self, tenant: str, cfg: TenantConfig) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(cfg.rate, cfg.burst, clock=self.clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(
        self,
        tenant: str = DEFAULT_TENANT,
        *,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> AdmissionTicket:
        """Admit one request or shed it (see the class docstring).

        ``deadline`` is the request's *relative* latency budget in
        seconds (on the front door's clock); the returned ticket
        carries the absolute deadline.
        """
        cfg = self.policy.tenant_config(tenant)
        effective_priority = priority if priority is not None else cfg.priority
        if effective_priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, "
                f"got {effective_priority!r}"
            )
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        # Checks and the pending increment happen in ONE lock
        # acquisition: snapshotting `pending`, checking unlocked and
        # writing the snapshot back would let two concurrent admits
        # both read N and both write N+1, undercounting pending (and
        # later blowing up release()).  The token is debited last so a
        # queue/deadline shed never burns rate budget.  Shed metrics
        # are recorded after the lock is dropped (_record_shed takes
        # the same lock).
        shed_reason: Optional[str] = None
        estimated = 0.0
        with self._lock:
            bucket = self._bucket(tenant, cfg)
            pending = self._pending.get(tenant, 0)
            now = self.clock()
            if pending >= cfg.max_pending:
                shed_reason = "queue"
            elif deadline is not None:
                # Everything this tenant already has in flight is
                # ahead of this request; if serving all of it plus
                # this request cannot fit the budget, the deadline is
                # unmeetable *now*.
                estimated = self.policy.service_estimate * (pending + 1)
                if estimated > deadline:
                    shed_reason = "deadline"
            if shed_reason is None and not bucket.try_acquire():
                shed_reason = "rate"
            if shed_reason is None:
                self._pending[tenant] = pending + 1
                self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
                seq = next(self._seq)
        if shed_reason == "queue":
            self._record_shed(tenant, "queue")
            raise QueueFullError(
                f"tenant {tenant!r} queue full "
                f"({pending}/{cfg.max_pending} pending); "
                f"shed load or retry later",
                tenant=tenant,
            )
        if shed_reason == "deadline":
            self._record_shed(tenant, "deadline")
            raise DeadlineExceededError(
                f"tenant {tenant!r} request budget {deadline:.3g}s "
                f"cannot be met (estimated {estimated:.3g}s for "
                f"{pending} queued ahead); shed at admission"
            )
        if shed_reason == "rate":
            self._record_shed(tenant, "rate")
            raise TenantRateLimitError(
                f"tenant {tenant!r} is over its rate limit "
                f"({cfg.rate:g}/s, burst {cfg.burst:g}); "
                f"retry after {bucket.retry_after():.3g}s",
                tenant=tenant,
                retry_after=bucket.retry_after(),
            )
        self._admitted_counter(tenant, effective_priority).inc()
        return AdmissionTicket(
            tenant=tenant,
            priority=effective_priority,
            admitted_at=now,
            deadline=None if deadline is None else now + deadline,
            seq=seq,
        )

    def release(self, ticket: AdmissionTicket) -> None:
        """Mark one admitted request finished (success *or* failure)."""
        with self._lock:
            pending = self._pending.get(ticket.tenant, 0)
            if pending <= 0:
                raise ValueError(
                    f"release without matching admit for tenant "
                    f"{ticket.tenant!r}"
                )
            self._pending[ticket.tenant] = pending - 1

    def shed_expired(self, ticket: AdmissionTicket) -> bool:
        """Deadline check for queued tickets (pull-based dispatchers).

        True (and accounted as a ``deadline`` shed) when the ticket's
        absolute deadline has passed -- its budget can no longer be
        met, so a dispatcher should drop it instead of serving it late.
        The caller still owns the ``release``.
        """
        if ticket.deadline is None or self.clock() < ticket.deadline:
            return False
        self._record_shed(ticket.tenant, "deadline")
        return True

    def exploration_allowed(
        self, ticket: Optional[AdmissionTicket]
    ) -> bool:
        """Deadline-aware exploration gate for the online selector.

        A request that carries a deadline bought a latency *bound*, not
        a latency *distribution* -- spending its budget on trying an
        unproven kernel arm would make the server's own curiosity a
        deadline risk.  Such requests always get the exploit arm; only
        deadline-free traffic (no ticket, or a ticket without a
        deadline) may be explored on.
        """
        return ticket is None or ticket.deadline is None

    def pending(self, tenant: str) -> int:
        """Admitted-but-unreleased requests for one tenant."""
        with self._lock:
            return self._pending.get(tenant, 0)

    # -- observability ---------------------------------------------------
    def stats(self) -> FrontDoorStats:
        """Immutable snapshot of the admission accounting."""
        with self._lock:
            names = (set(self._admitted) | set(self._pending)
                     | {t for t, _ in self._shed})
            tenants = {
                name: TenantStats(
                    admitted=self._admitted.get(name, 0),
                    shed={
                        reason: self._shed.get((name, reason), 0)
                        for reason in SHED_REASONS
                        if self._shed.get((name, reason), 0)
                    },
                    pending=self._pending.get(name, 0),
                )
                for name in names
            }
            return FrontDoorStats(
                admitted=sum(self._admitted.values()),
                shed=sum(self._shed.values()),
                tenants=tenants,
            )
