"""Serving layer: amortise tuning cost across repeated SpMV traffic.

The paper's pipeline (features -> classifier -> binning -> launch) runs
per matrix; a server handling heavy repeated traffic must not re-pay the
inspector on every call.  This subpackage adds the three pieces that
make tuned SpMV *reusable*:

- :mod:`repro.serve.fingerprint` -- cheap structural hashing, so
  identical sparsity patterns are recognised across calls (values are
  free to change, as in iterative solvers);
- :mod:`repro.serve.plan_cache` -- a bounded LRU map from fingerprint to
  :class:`~repro.core.plan.ExecutionPlan`, with hit/miss/eviction
  counters and explicit invalidation;
- :mod:`repro.serve.batch` -- one plan against a multi-RHS block in a
  single dispatch sequence, on the simulated device and the real CPU;
- :mod:`repro.serve.server` -- the :class:`SpMVServer` façade tying it
  together behind ``submit`` / ``submit_batch`` with observable stats;
- :mod:`repro.serve.frontdoor` -- the multi-tenant traffic layer in
  front of the hot path: per-tenant token-bucket admission, priority
  classes with aging, deadline shedding and fair coalescing slots
  (``SpMVServer(admission=AdmissionPolicy(...))``).

Resilience (retries, per-plan circuit breakers, graceful degradation to
the serial reference path) plugs in through the server's ``resilience``
parameter -- see :mod:`repro.resilient`.
"""

from repro.serve.batch import (
    CPUBatchResult,
    cpu_batch_spmm,
    iter_column_blocks,
    run_plan_spmm,
    run_plan_spmv,
)
from repro.serve.fingerprint import (
    FingerprintCache,
    FingerprintCacheStats,
    MatrixFingerprint,
    fingerprint_matrix,
)
from repro.serve.frontdoor import (
    DEFAULT_TENANT,
    PRIORITIES,
    AdmissionPolicy,
    AdmissionTicket,
    AgingQueue,
    FrontDoor,
    FrontDoorStats,
    TenantConfig,
    TenantStats,
    TokenBucket,
    fair_allocation,
)
from repro.serve.plan_cache import CacheStats, PlanCache
from repro.serve.server import (
    ServerStats,
    SpMVServer,
    SubmitResult,
    heuristic_planner,
)

__all__ = [
    "MatrixFingerprint",
    "fingerprint_matrix",
    "FingerprintCache",
    "FingerprintCacheStats",
    "CacheStats",
    "PlanCache",
    "run_plan_spmv",
    "run_plan_spmm",
    "cpu_batch_spmm",
    "iter_column_blocks",
    "CPUBatchResult",
    "SpMVServer",
    "ServerStats",
    "SubmitResult",
    "heuristic_planner",
    "DEFAULT_TENANT",
    "PRIORITIES",
    "AdmissionPolicy",
    "AdmissionTicket",
    "AgingQueue",
    "FrontDoor",
    "FrontDoorStats",
    "TenantConfig",
    "TenantStats",
    "TokenBucket",
    "fair_allocation",
]
