"""``SpMVServer``: a façade that makes tuned SpMV reusable and batched.

The paper's framework pays feature extraction, classifier consultation
and binning for *every* matrix -- fine for one-shot benchmarking, wrong
for serving repeated traffic.  The server splits that cost along the
inspector--executor line:

1. **fingerprint** the incoming matrix's sparsity structure (cheap hash);
2. **plan-or-hit**: consult the LRU plan cache; only a miss runs the
   planner (the tuner's predict phase, or a heuristic fallback);
3. **execute** the plan -- single vector or a whole multi-RHS block in
   one dispatch sequence;
4. account everything in an observable stats snapshot.

Iterative solvers, time-stepping codes and PageRank-style workloads all
re-submit one pattern with changing values; after the first request they
run plan-free.

Concurrency: ``submit``/``submit_batch`` are safe to call from a thread
pool -- the plan cache has its own lock and the server's counters and
stage accounting sit behind an internal ``RLock``.

Observability: each serving stage runs inside a tracing span
(``serve.fingerprint`` / ``serve.plan`` / ``serve.execute``), and the
server feeds ``serve_*`` counters and per-stage latency histograms to
its metrics registry (the process-global one by default).

Resilience: pass ``resilience=ResiliencePolicy(...)`` and every tuned
execution runs through :class:`~repro.resilient.ResilientExecutor` --
bounded retries with backoff, a per-plan circuit breaker, and graceful
degradation that invalidates the failing cached plan and serves the
request from the always-correct serial reference path (bypassing any
chaos wrapper on the device).  Without a policy the hot path is the
plain one: no extra objects, no extra branches beyond one ``is None``.

Scaling past one device: ``sharding=ShardingPolicy(...)`` routes
execution through a :class:`~repro.shard.executor.ShardedExecutor`
(K row-shards planned independently, executed concurrently on a device
pool), and ``scheduler=CoalescePolicy(...)`` puts a
:class:`~repro.shard.scheduler.RequestScheduler` in front of ``submit``
so concurrent same-matrix requests coalesce into one multi-RHS
dispatch.  Both default to ``None`` and the single-device hot path is
byte-for-byte the same when unset.  The server is a context manager;
``close()`` drains the scheduler and shuts worker pools down
deterministically, after which ``submit`` raises
:class:`~repro.errors.DeviceError` (mirroring ``CPUExecutor``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

import numpy as np

from repro.binning.single import SingleBinning
from repro.core.plan import ExecutionPlan
from repro.device.executor import SimulatedDevice, SpMMResult, SpMVResult
from repro.errors import DeviceError
from repro.formats.csr import CSRMatrix
from repro.observe.registry import MetricsRegistry, get_registry
from repro.observe.spans import activate_trace, span
from repro.trace.context import TraceContext
from repro.trace.recorder import TraceRecorder
from repro.trace.slo import SLOMonitor, SLOTarget, TracingPolicy
from repro.resilient.executor import (
    ResiliencePolicy,
    ResilienceStats,
    ResilientExecutor,
)
from repro.resilient.faults import unwrap_device
from repro.serve.batch import run_plan_spmm, run_plan_spmv
from repro.serve.fingerprint import (
    FingerprintCache,
    FingerprintCacheStats,
    MatrixFingerprint,
)
from repro.serve.frontdoor import (
    DEFAULT_TENANT,
    PRIORITIES,
    AdmissionPolicy,
    FrontDoor,
    FrontDoorStats,
)
from repro.serve.plan_cache import CacheStats, PlanCache
from repro.utils.validation import check_spmm_operand, check_spmv_operand

if TYPE_CHECKING:  # pragma: no cover - import cycle: shard imports serve
    from repro.blackbox.core import BlackboxPolicy, BlackboxStats
    from repro.learn.selector import LearningPolicy, LearnStats
    from repro.shard.executor import (
        ShardExecutorStats,
        ShardingPolicy,
        ShardSummary,
    )
    from repro.shard.scheduler import CoalescePolicy, SchedulerStats

__all__ = ["SpMVServer", "ServerStats", "SubmitResult", "heuristic_planner"]

#: Signature of anything that can produce a plan for a new matrix.
Planner = Callable[[CSRMatrix], ExecutionPlan]


def heuristic_planner(matrix: CSRMatrix) -> ExecutionPlan:
    """Zero-training fallback planner: single bin, one width-matched kernel.

    Picks the subvector width nearest the mean row length (the paper's
    own rule of thumb for uniform matrices), degrading to ``serial`` for
    very short rows and ``vector`` for very long ones.  This keeps the
    server usable without a fitted :class:`~repro.core.framework.AutoTuner`;
    pass one for input-aware plans.
    """
    binning = SingleBinning().bin_rows(matrix)
    mean = matrix.nnz / matrix.nrows if matrix.nrows else 0.0
    if mean <= 2.0:
        kernel = "serial"
    elif mean >= 192.0:
        kernel = "vector"
    else:
        width = int(min(128, max(2, 2 ** round(np.log2(max(mean, 2.0))))))
        kernel = f"subvector{width}"
    bin_kernels = {b: kernel for b, _ in binning.non_empty()}
    return ExecutionPlan(
        scheme=SingleBinning(),
        binning=binning,
        bin_kernels=bin_kernels,
        source="heuristic",
    )


@dataclass(frozen=True)
class SubmitResult:
    """Outcome of one ``submit``/``submit_batch`` call."""

    #: Result: shape ``(nrows,)`` for submit, ``(nrows, k)`` for batch.
    y: np.ndarray
    #: Simulated seconds the execution was accounted.
    seconds: float
    #: Kernel launches in the dispatch sequence(s) this call issued.
    n_dispatches: int
    #: True when the plan came from the cache (planning skipped); for a
    #: sharded execution, True when *every* shard's plan was cached.
    cache_hit: bool
    fingerprint: MatrixFingerprint
    #: The executed plan; ``None`` for sharded executions (each shard
    #: has its own plan -- see ``shards`` for the breakdown).
    plan: Optional[ExecutionPlan]
    #: Tuned-plan attempts this request took (0 when an open breaker
    #: short-circuited straight to the fallback; always 1 without a
    #: resilience policy; summed across shards when sharded).
    attempts: int = 1
    #: True when the fallback (serial reference) path produced ``y``
    #: after the tuned plan kept failing (any shard, when sharded).
    degraded: bool = False
    #: How many requests shared this request's dispatch (1 = no
    #: coalescing; >1 means the scheduler batched it with siblings).
    coalesced_width: int = 1
    #: Per-shard breakdown when the server runs sharded, else ``None``.
    shards: Optional[ShardSummary] = None
    #: This request's trace id when the server traces, else ``None``.
    #: Pass it to ``TraceRecorder.timeline`` / filter the Chrome export.
    trace_id: Optional[str] = None
    #: The coalesced dispatch's own trace id when this request was
    #: served by a traced, coalesced group (its root span links back to
    #: every member request, this one included); else ``None``.
    dispatch_trace_id: Optional[str] = None
    #: Tenant the request was attributed to (multi-tenant front door).
    tenant: str = DEFAULT_TENANT
    #: Priority class the request rode in (``latency`` / ``batch``).
    priority: str = "latency"
    #: Arm the online selector served this request under (``"tree"`` or
    #: ``"u<U>:<kernel>"``); ``None`` when the server has no
    #: ``learning`` policy.
    arm: Optional[str] = None
    #: True when the arm was an exploration rather than the exploit
    #: choice (always False without a ``learning`` policy).
    explored: bool = False


@dataclass(frozen=True)
class ServerStats:
    """Point-in-time snapshot of a server's accounting."""

    #: Total ``submit`` + ``submit_batch`` calls.
    requests: int
    #: ``submit_batch`` calls only.
    batch_requests: int
    #: Right-hand sides served (a k-wide batch counts k).
    rhs_served: int
    #: Dispatch sequences issued (one per request, however wide).
    dispatch_sequences: int
    #: Individual kernel launches across all sequences.
    kernel_launches: int
    #: Accumulated simulated execution seconds.
    simulated_seconds: float
    #: Wall seconds per serving stage (``fingerprint``/``plan``/``execute``).
    stage_seconds: Dict[str, float]
    cache: CacheStats
    #: Resilience accounting; ``None`` when no policy is configured.
    resilience: Optional[ResilienceStats] = None
    #: Coalescing accounting; ``None`` without a ``scheduler=`` policy.
    scheduler: Optional[SchedulerStats] = None
    #: Sharding accounting; ``None`` without a ``sharding=`` policy.
    shards: Optional[ShardExecutorStats] = None
    #: Fingerprint identity-cache accounting (hash-skip fast path).
    fingerprints: Optional[FingerprintCacheStats] = None
    #: Admission accounting; ``None`` without an ``admission=`` policy.
    frontdoor: Optional[FrontDoorStats] = None
    #: Online-selector accounting; ``None`` without a ``learning=``
    #: policy.
    learning: Optional[LearnStats] = None
    #: Flight-recorder / debug-bundle accounting; ``None`` without a
    #: ``blackbox=`` policy.
    blackbox: Optional[BlackboxStats] = None

    @property
    def hit_rate(self) -> float:
        """Plan-cache hit rate over all requests."""
        return self.cache.hit_rate

    def describe(self) -> str:
        """Readable multi-line summary (CLI / logs)."""
        lines = [
            f"requests           : {self.requests} "
            f"({self.batch_requests} batched, {self.rhs_served} RHS total)",
            f"plan cache         : {self.cache.hits} hits / "
            f"{self.cache.misses} misses / {self.cache.evictions} evictions "
            f"(hit rate {self.hit_rate:.1%}, size "
            f"{self.cache.size}/{self.cache.capacity})",
            f"dispatch sequences : {self.dispatch_sequences} "
            f"({self.kernel_launches} kernel launches)",
            f"simulated exec time: {self.simulated_seconds * 1e3:.3f} ms",
        ]
        if self.fingerprints is not None:
            lines.append(
                f"fingerprint cache  : {self.fingerprints.identity_hits} "
                f"identity hits / {self.fingerprints.hashes} hashes "
                f"(hit rate {self.fingerprints.hit_rate:.1%})"
            )
        for stage in ("fingerprint", "plan", "execute"):
            lines.append(
                f"  {stage + ' stage':<17s}: "
                f"{self.stage_seconds.get(stage, 0.0) * 1e3:.3f} ms wall"
            )
        if self.resilience is not None:
            lines.append("resilience:")
            lines.extend(
                "  " + line for line in self.resilience.describe().splitlines()
            )
        if self.scheduler is not None:
            lines.append("coalescing:")
            lines.extend(
                "  " + line for line in self.scheduler.describe().splitlines()
            )
        if self.shards is not None:
            lines.append("sharding:")
            lines.extend(
                "  " + line for line in self.shards.describe().splitlines()
            )
        if self.frontdoor is not None:
            lines.append("front door:")
            lines.extend(
                "  " + line for line in self.frontdoor.describe().splitlines()
            )
        if self.learning is not None:
            lines.append("online learning:")
            lines.extend(
                "  " + line for line in self.learning.describe().splitlines()
            )
        if self.blackbox is not None:
            lines.append("blackbox:")
            lines.extend(
                "  " + line for line in self.blackbox.describe().splitlines()
            )
        return "\n".join(lines)


class SpMVServer:
    """Serving façade over fingerprinting, plan caching and batching.

    Parameters
    ----------
    tuner:
        A *fitted* :class:`~repro.core.framework.AutoTuner`; its
        ``plan`` method becomes the planner and its device executes.
        Optional -- without one, :func:`heuristic_planner` plans.
    planner:
        Explicit planner callable, overriding ``tuner``'s.
    device:
        Execution device; defaults to the tuner's (or a fresh
        :class:`SimulatedDevice`).
    cache_capacity:
        Bound on distinct sparsity patterns kept planned.
    max_rhs:
        Optional cap on columns per batched pass (wider submissions are
        column-blocked internally; still one request in the stats, but
        each column block is a separate dispatch sequence physically --
        see :meth:`submit_batch`).
    registry:
        Metrics registry the server (and its cache/device, unless they
        were passed in pre-built) reports to.  Defaults to the
        process-global registry; pass
        :data:`~repro.observe.NULL_REGISTRY` to disable at near-zero
        overhead.
    resilience:
        Optional :class:`~repro.resilient.ResiliencePolicy`.  When set,
        tuned executions are retried with backoff, guarded by a
        per-plan circuit breaker, output-validated against NaN/Inf
        poisoning, and degraded to the serial reference path (with the
        cached plan invalidated) when they keep failing.  ``None``
        (default) keeps the hot path exactly as before.  With
        ``sharding`` the policy applies *per shard* (inside the
        sharded executor) instead of per request.
    sharding:
        Optional :class:`~repro.shard.executor.ShardingPolicy`.  When
        set, requests execute through a
        :class:`~repro.shard.executor.ShardedExecutor`: K row-shards
        planned independently and run concurrently on a pool of devices
        cloned from ``device``'s spec.  ``None`` (default) keeps the
        single-device path untouched.
    scheduler:
        Optional :class:`~repro.shard.scheduler.CoalescePolicy`.  When
        set, ``submit`` routes through a
        :class:`~repro.shard.scheduler.RequestScheduler` that coalesces
        concurrent same-matrix requests into one multi-RHS dispatch
        (``submit_batch`` callers are already batched and bypass it).
        Stats note: a coalesced group accounts as *one* batch request
        in :class:`ServerStats` -- per-request counts live in
        ``stats().scheduler``.
    tracing:
        Optional :class:`~repro.trace.TracingPolicy`.  When set, every
        ``submit``/``submit_batch`` runs under a fresh trace: a
        ``serve.request`` root span plus every stage, shard-worker,
        retry-attempt and device-dispatch span lands in
        :attr:`trace_recorder` (exportable as Chrome trace-event JSON
        or a plain-text timeline), and request latency feeds
        :attr:`slo` (windowed p50/p95/p99 quantile gauges, breach
        counters, ``health_snapshot()``).  ``None`` (default) keeps the
        hot path untraced: no context, no recorder, no extra work.
    admission:
        Optional :class:`~repro.serve.frontdoor.AdmissionPolicy`.  When
        set, every ``submit``/``submit_batch`` passes through a
        :class:`~repro.serve.frontdoor.FrontDoor` first: per-tenant
        token-bucket rate limiting, per-tenant pending bounds and
        deadline-aware shedding (rejections raise
        :class:`~repro.errors.TenantRateLimitError` /
        :class:`~repro.errors.QueueFullError` /
        :class:`~repro.errors.DeadlineExceededError` and count into
        ``frontdoor_shed_total{tenant,reason}``).  With a coalescing
        ``scheduler`` and ``fair_coalescing`` on, tenants propagate
        into the scheduler so batch slots are fair-allocated; with
        ``tracing``, each priority class gets its own SLO monitor.
        ``None`` (default) keeps the hot path anonymous and
        admission-free -- same pattern as ``resilience=``/``tracing=``.
    learning:
        Optional :class:`~repro.learn.LearningPolicy`.  When set, an
        :class:`~repro.learn.OnlineSelector` sits between requests and
        the planner: each request is served under a chosen *arm*
        (``tree`` = the configured planner, or a candidate
        ``(U, kernel)`` override), observed latency feeds back into
        the arm table, and a bounded exploration budget tries
        alternatives -- never on requests carrying deadlines, never in
        coalesced group dispatches.  ``SubmitResult`` gains
        ``arm``/``explored``; arm changes re-plan through the existing
        ``invalidate()`` path (shard layer included); decisions land
        on ``learn.decide`` trace spans and ``learn_*`` metrics.
        ``None`` (default) keeps the hot path byte-identical to an
        unlearned server.
    blackbox:
        Optional :class:`~repro.blackbox.BlackboxPolicy`.  When set,
        every served request lands in a bounded flight-recorder ring
        (tenant, arm, plan, cache hit, shard layout, resilience
        outcome, wall + simulated latency, trace id), and incident
        signals -- SLO breaches, breaker opens, worker-pool crashes,
        shed-rate spikes, degraded requests -- fire a rate-limited
        debug-bundle write under ``bundle_dir`` that
        ``python -m repro doctor`` renders into an incident report.
        ``None`` (default) allocates no recorder state and adds
        nothing to the submit path beyond one ``is None`` check --
        same pattern as ``resilience=``/``tracing=``.
    """

    def __init__(
        self,
        tuner=None,
        *,
        planner: Optional[Planner] = None,
        device: Optional[SimulatedDevice] = None,
        cache_capacity: int = 128,
        max_rhs: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        resilience: Optional[ResiliencePolicy] = None,
        sharding: Optional[ShardingPolicy] = None,
        scheduler: Optional[CoalescePolicy] = None,
        tracing: Optional[TracingPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
        learning: Optional[LearningPolicy] = None,
        blackbox: Optional[BlackboxPolicy] = None,
    ):
        if planner is not None:
            self._planner: Planner = planner
        elif tuner is not None:
            self._planner = tuner.plan
        else:
            self._planner = heuristic_planner
        self.registry = get_registry() if registry is None else registry
        if device is not None:
            self.device = device
        elif tuner is not None:
            self.device = tuner.device
        else:
            self.device = SimulatedDevice(registry=self.registry)
        self.cache = PlanCache(capacity=cache_capacity,
                               registry=self.registry)
        # Identity fast path: resubmitting the same matrix *object*
        # (solver traffic) skips structural hashing entirely.
        self._fingerprints = FingerprintCache()
        #: The :class:`~repro.blackbox.Blackbox` behind a ``blackbox=``
        #: server; ``None`` otherwise.  Built before the front door and
        #: SLO monitors so their incident hooks can point at it; bound
        #: (event sink + layout labels) at the end of construction.
        self.blackbox = None
        if blackbox is not None:
            # Imported lazily -- same rationale as the shard layer: no
            # import tax on servers that never fly a recorder.
            from repro.blackbox.core import Blackbox

            self.blackbox = Blackbox(blackbox, registry=self.registry)
        self.learning = learning
        self._selector = None
        if learning is not None:
            # Imported lazily -- same rationale as the shard layer: no
            # import tax on servers that never learn.
            from repro.learn.selector import OnlineSelector
            from repro.trace.profiler import KernelProfiler

            self._selector = OnlineSelector(
                learning,
                self._planner,
                profiler=KernelProfiler(unwrap_device(self.device).spec),
                registry=self.registry,
            )
            # The selector becomes THE planner: the plan cache and the
            # sharded executor's per-shard planning (built below from
            # self._planner) all route through the active arm.
            self._planner = self._selector.plan
        self.resilience = resilience
        # With sharding, resilience applies per shard inside the sharded
        # executor; wrapping here too would retry every request twice.
        self._resilient = (
            ResilientExecutor(resilience, registry=self.registry)
            if resilience is not None and sharding is None else None
        )
        self.max_rhs = max_rhs
        self.tracing = tracing
        self.admission = admission
        self.frontdoor: Optional[FrontDoor] = (
            FrontDoor(
                admission,
                registry=self.registry,
                on_shed=(self.blackbox.note_shed
                         if self.blackbox is not None else None),
            )
            if admission is not None else None
        )
        self.trace_recorder: Optional[TraceRecorder] = None
        self.slo: Optional[SLOMonitor] = None
        #: Per-priority-class SLO monitors (any tracing server).
        self.slo_by_class: Dict[str, SLOMonitor] = {}
        #: Request-latency histogram carrying trace-id exemplars; built
        #: only for tracing servers (exemplars need trace ids, and an
        #: untraced server's metric families must stay unchanged).
        self._m_request_seconds = None
        if tracing is not None:
            self.trace_recorder = TraceRecorder(
                capacity=tracing.recorder_capacity,
                registry=self.registry,
            )
            target = tracing.slo if tracing.slo is not None else SLOTarget()
            self.slo = SLOMonitor(
                target,
                window=tracing.latency_window,
                registry=self.registry,
                refresh_every=tracing.refresh_every,
                # The blackbox turns per-request breaches into debug
                # bundles; only the overall monitor triggers (the
                # per-class monitors see the same latencies).
                on_breach=(self.blackbox.on_slo_breach
                           if self.blackbox is not None else None),
            )
            self._m_request_seconds = self.registry.histogram(
                "serve_request_seconds",
                help_text="End-to-end request wall seconds "
                          "(buckets carry trace-id exemplars).",
            )
            # One monitor per priority class: an overloaded batch
            # class must not hide a healthy latency class (or vice
            # versa) inside one mixed window.  Built for *every*
            # tracing server -- callers pass ``priority=`` whether or
            # not an admission policy resolves it -- so the class view
            # does not silently vanish when the front door is off.
            self.slo_by_class = {
                priority: SLOMonitor(
                    target,
                    window=tracing.latency_window,
                    registry=self.registry,
                    refresh_every=tracing.refresh_every,
                    labels={"class": priority},
                )
                for priority in PRIORITIES
            }
        self._closed = False
        # Imported lazily: repro.shard.executor/scheduler import the
        # serve layer, so importing them at module scope would close an
        # import cycle (and tax every import that never shards).
        self._sharded = None
        if sharding is not None:
            from repro.shard.executor import ShardedExecutor

            base_spec = unwrap_device(self.device).spec
            self._sharded = ShardedExecutor(
                sharding,
                planner=self._planner,
                device_factory=lambda: SimulatedDevice(
                    spec=base_spec, registry=self.registry
                ),
                resilience=resilience,
                registry=self.registry,
            )
        self._scheduler = None
        if scheduler is not None:
            from repro.shard.scheduler import RequestScheduler

            # The admission policy's fairness promise extends into the
            # coalescing layer: tenants ride through to the scheduler
            # and batch slots are fair-allocated across them.
            if (admission is not None and admission.fair_coalescing
                    and not scheduler.fair):
                scheduler = replace(scheduler, fair=True)
            # Bound to the *direct* batch path: close() drains pending
            # groups through it after the public API has shut.  With
            # learning on, group dispatches are exploit-only -- a
            # coalesced group mixes tenants (and possibly deadlines),
            # so no member's latency is spent on exploration.
            if self._selector is None:
                batch_fn = self._direct_submit_batch
            else:
                def batch_fn(m, X):
                    return self._direct_submit_batch(m, X, no_explore=True)
            self._scheduler = RequestScheduler(
                batch_fn, scheduler,
                registry=self.registry,
                fingerprint=self._fingerprints.fingerprint,
            )
        self._lock = threading.RLock()
        self._requests = 0
        self._batch_requests = 0
        self._rhs_served = 0
        self._dispatch_sequences = 0
        self._kernel_launches = 0
        self._simulated_seconds = 0.0
        self._stage_seconds: Dict[str, float] = {
            "fingerprint": 0.0, "plan": 0.0, "execute": 0.0,
        }
        # Registry instruments, resolved once (hot path does no lookups).
        self._m_requests = {
            kind: self.registry.counter(
                "serve_requests_total", {"kind": kind},
                help_text="submit/submit_batch calls served.",
            )
            for kind in ("single", "batch")
        }
        self._m_rhs = self.registry.counter(
            "serve_rhs_total",
            help_text="Right-hand sides served (a k-wide batch counts k).",
        )
        self._m_launches = self.registry.counter(
            "serve_kernel_launches_total",
            help_text="Kernel launches across all dispatch sequences.",
        )
        self._m_sim_seconds = self.registry.counter(
            "serve_simulated_seconds_total",
            help_text="Accumulated simulated execution seconds.",
        )
        self._m_stage = {
            stage: self.registry.histogram(
                "serve_stage_seconds", {"stage": stage},
                help_text="Wall seconds per serving stage per request.",
            )
            for stage in ("fingerprint", "plan", "execute")
        }
        # Bound last: binding reads the final layout (shard backend,
        # selector, recorder) and registers the incident event sink.
        if self.blackbox is not None:
            self.blackbox.bind(self)

    # -- lifecycle -------------------------------------------------------
    def __enter__(self) -> "SpMVServer":
        if self._closed:
            raise DeviceError("SpMVServer is closed; create a new instance")
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the server down deterministically (idempotent).

        Order matters: the coalescing scheduler drains first (pending
        groups flush through the direct batch path and their waiters
        get results), then the sharded executor's worker pool joins.
        A closed server raises :class:`~repro.errors.DeviceError` on
        further ``submit``/``submit_batch`` calls -- use-after-close is
        a caller bug, mirroring :class:`~repro.device.cpu.CPUExecutor`.
        """
        if self._closed:
            return
        self._closed = True
        if self._scheduler is not None:
            self._scheduler.close()
        if self._sharded is not None:
            self._sharded.close()
        if self.blackbox is not None:
            self.blackbox.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` (or ``__exit__``) has run."""
        return self._closed

    @property
    def selector(self):
        """The :class:`~repro.learn.OnlineSelector` behind a
        ``learning=`` server (its decision log, arm tables and
        :func:`~repro.learn.retrain` hook); ``None`` without one."""
        return self._selector

    def _check_open(self) -> None:
        if self._closed:
            raise DeviceError(
                "SpMVServer used after close(); create a new instance"
            )

    # -- planning --------------------------------------------------------
    def _plan_for(
        self, matrix: CSRMatrix
    ) -> tuple[ExecutionPlan, MatrixFingerprint, bool]:
        with span("serve.fingerprint", self.registry) as sp_fp:
            fp = self._fingerprints.fingerprint(matrix)
        with span("serve.plan", self.registry) as sp_plan:
            plan, hit = self.cache.get_or_build(
                fp, lambda: self._planner(matrix)
            )
        if not hit and plan.source == "heuristic":
            self.registry.emit(
                "planner_fallback", fingerprint=str(fp), source=plan.source
            )
        with self._lock:
            self._stage_seconds["fingerprint"] += sp_fp.seconds
            self._stage_seconds["plan"] += sp_plan.seconds
        self._m_stage["fingerprint"].observe(sp_fp.seconds)
        self._m_stage["plan"].observe(sp_plan.seconds)
        return plan, fp, hit

    # -- input validation ------------------------------------------------
    @staticmethod
    def _validate_rhs(
        matrix: CSRMatrix, rhs: np.ndarray, *, batch: bool
    ) -> np.ndarray:
        """Check an operand *before* planning touches the cache.

        A malformed vector must raise :class:`~repro.errors.ShapeError`
        up front -- not surface a NumPy broadcast/cast error mid-execute
        after a cache entry was already created for the pattern.
        """
        if batch:
            return check_spmm_operand(matrix.ncols, rhs)
        return check_spmv_operand(matrix.ncols, rhs)

    # -- graceful degradation --------------------------------------------
    @staticmethod
    def _fallback_plan(matrix: CSRMatrix) -> ExecutionPlan:
        """The always-correct degraded plan: one bin, serial kernel."""
        binning = SingleBinning().bin_rows(matrix)
        return ExecutionPlan(
            scheme=SingleBinning(),
            binning=binning,
            bin_kernels={b: "serial" for b, _ in binning.non_empty()},
            source="fallback",
        )

    def _degrade_plan(self, fp: MatrixFingerprint, cause: str) -> None:
        """Drop the failing cached plan and record the downgrade."""
        invalidated = self.cache.invalidate(fp)
        self.registry.emit(
            "plan_invalidated",
            fingerprint=str(fp),
            cause=cause,
            was_cached=invalidated,
        )

    # -- sharded / coalesced routing -------------------------------------
    def _sharded_submit(
        self, matrix: CSRMatrix, rhs: np.ndarray, *, batch: bool
    ) -> SubmitResult:
        """Serve one request through the sharded executor."""
        with span("serve.fingerprint", self.registry) as sp_fp:
            fp = self._fingerprints.fingerprint(matrix)
        with self._lock:
            self._stage_seconds["fingerprint"] += sp_fp.seconds
        self._m_stage["fingerprint"].observe(sp_fp.seconds)
        with span("serve.execute", self.registry) as sp:
            if batch:
                res = self._sharded.run_spmm(matrix, rhs,
                                             max_rhs=self.max_rhs,
                                             fingerprint=fp)
            else:
                res = self._sharded.run_spmv(matrix, rhs, fingerprint=fp)
        self._account(sp.seconds, res.seconds, res.n_dispatches,
                      n_rhs=res.n_rhs, batch=batch)
        return SubmitResult(
            y=res.y,
            seconds=res.seconds,
            n_dispatches=res.n_dispatches,
            cache_hit=res.cache_hit,
            fingerprint=fp,
            plan=None,
            attempts=res.attempts,
            degraded=bool(res.summary.degraded_shards),
            shards=res.summary,
        )

    def _coalesced_submit(
        self, matrix: CSRMatrix, x: np.ndarray, tenant: str = DEFAULT_TENANT
    ) -> SubmitResult:
        """Serve one SpMV through the coalescing scheduler.

        The scheduler groups concurrent same-matrix submissions and
        dispatches each group once via the direct batch path; this
        request's column of the group result is bit-identical to what a
        lone ``submit`` would have produced (batched kernels compute
        every column independently).
        """
        scheduled = self._scheduler.submit(matrix, x, tenant=tenant)
        group: SubmitResult = scheduled.batch
        return SubmitResult(
            y=group.y[:, scheduled.column],
            seconds=group.seconds,
            n_dispatches=group.n_dispatches,
            cache_hit=group.cache_hit,
            fingerprint=group.fingerprint,
            plan=group.plan,
            attempts=group.attempts,
            degraded=group.degraded,
            coalesced_width=scheduled.width,
            shards=group.shards,
            dispatch_trace_id=scheduled.dispatch_trace_id,
            arm=group.arm,
            explored=group.explored,
        )

    # -- online learning -------------------------------------------------
    def _learned_request(
        self,
        matrix: CSRMatrix,
        no_explore: bool,
        body: Callable[[], SubmitResult],
    ) -> SubmitResult:
        """Decide an arm, execute under it, feed the outcome back.

        The decision rides a thread-local inside the selector, so the
        plan cache *and* the sharded executor's per-shard planning
        (both synchronous on this thread) build plans for the chosen
        arm.  When the arm differs from the one the digest's cached
        plans were built under, the change pushes through the same
        invalidation layers :meth:`invalidate` uses -- plan cache,
        shard sets, worker-side bound plans.  A failing or degraded
        execution is reported back as a fault so the arm is penalized
        (and eventually quarantined), not retried forever.
        """
        fp = self._fingerprints.fingerprint(matrix)
        with span("learn.decide", self.registry) as sp:
            decision = self._selector.decide(
                matrix, fp.digest, allow_explore=not no_explore
            )
            if decision.replan:
                self.cache.invalidate(fp)
                if self._sharded is not None:
                    self._sharded.invalidate(fp.digest)
            sp.attrs = {
                "key": decision.key,
                "arm": decision.arm.name,
                "explored": decision.explored,
                "replan": decision.replan,
            }
        t0 = perf_counter()
        try:
            with self._selector.activate(decision):
                result = body()
        except Exception:
            self._selector.observe(
                decision, simulated=0.0, wall=perf_counter() - t0,
                outcome="error",
            )
            raise
        self._selector.observe(
            decision,
            simulated=result.seconds,
            wall=perf_counter() - t0,
            outcome="degraded" if result.degraded else "ok",
        )
        return replace(
            result, arm=decision.arm.name, explored=decision.explored
        )

    # -- tracing ---------------------------------------------------------
    def _traced_request(
        self,
        kind: str,
        fn: Callable[[], SubmitResult],
        *,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        slo_class: Optional[str] = None,
    ) -> SubmitResult:
        """Run one request under a fresh trace and feed the SLO monitor.

        Opens a new trace context (root ``serve.request`` span) for the
        whole request -- every stage span, shard-worker span, retry
        attempt and device dispatch recorded while it is active joins
        this request's trace.  Request wall latency is observed into
        the SLO monitor whether the request succeeds or raises (a
        failing request is still a served latency), and into the
        ``slo_class`` priority-class monitor -- the class view works on
        any tracing server, front door or not, while ``priority`` only
        *annotates the span* when admission resolved it (an anonymous
        server's traces stay byte-identical to before).
        """
        ctx = TraceContext.root(self.trace_recorder)
        attrs: Dict[str, Any] = {"kind": kind}
        if tenant is not None:
            attrs["tenant"] = tenant
        if priority is not None:
            attrs["priority"] = priority
        t0 = perf_counter()
        try:
            with activate_trace(ctx):
                with span("serve.request", self.registry, attrs=attrs):
                    result = fn()
        finally:
            elapsed = perf_counter() - t0
            # Exemplar first: a breach fired by the SLO observe below
            # snapshots metrics, and the bundle should already carry
            # this request's trace id against its latency bucket.
            if self._m_request_seconds is not None:
                self._m_request_seconds.observe(
                    elapsed, exemplar=ctx.trace_id
                )
            if self.slo is not None:
                self.slo.observe(elapsed)
            if slo_class is not None:
                class_monitor = self.slo_by_class.get(slo_class)
                if class_monitor is not None:
                    class_monitor.observe(elapsed)
        return replace(result, trace_id=ctx.trace_id)

    def health_snapshot(self) -> Dict[str, Any]:
        """The SLO monitor's point-in-time health (tracing servers only).

        The snapshot's ``classes`` key holds one nested snapshot per
        priority class -- every tracing server has them (requests
        without an explicit priority count into ``latency``), so the
        class view does not depend on an admission policy being set.

        Raises
        ------
        DeviceError
            When the server was built without a tracing policy.
        """
        if self.slo is None:
            raise DeviceError(
                "health_snapshot() requires tracing=TracingPolicy(...)"
            )
        snapshot = self.slo.health_snapshot()
        if self.slo_by_class:
            snapshot["classes"] = {
                priority: monitor.health_snapshot()
                for priority, monitor in self.slo_by_class.items()
            }
        return snapshot

    # -- serving ---------------------------------------------------------
    def submit(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        *,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> SubmitResult:
        """Serve one SpMV request: admit, fingerprint, plan-or-hit, execute.

        ``tenant``/``priority``/``deadline`` feed the multi-tenant
        front door when an ``admission`` policy is configured -- an
        over-rate, over-bound or deadline-infeasible request sheds
        *here* with the matching exception before any planning work.
        Without a policy they merely stamp the result (``deadline`` is
        a relative latency budget in seconds and is ignored).
        """
        self._check_open()
        return self._admitted_request(
            "single",
            tenant=tenant, priority=priority, deadline=deadline,
            fn=lambda t, ne: self._submit_inner(matrix, x, t,
                                                no_explore=ne),
        )

    def _admitted_request(
        self,
        kind: str,
        *,
        tenant: Optional[str],
        priority: Optional[str],
        deadline: Optional[float],
        fn: Callable[[str, bool], SubmitResult],
    ) -> SubmitResult:
        """Front-door admission + tracing wrapper around one request.

        ``fn`` receives the resolved tenant and a ``no_explore`` flag:
        requests carrying a deadline must never pay for the online
        selector's exploration (with a front door the ticket decides
        via :meth:`~repro.serve.frontdoor.FrontDoor.exploration_allowed`;
        without one, any explicit ``deadline`` argument gates it).
        """
        bb = self.blackbox
        t_flight = perf_counter() if bb is not None else 0.0
        resolved_tenant = DEFAULT_TENANT if tenant is None else tenant
        ticket = None
        if self.frontdoor is not None:
            ticket = self.frontdoor.admit(
                resolved_tenant, priority=priority, deadline=deadline
            )
            resolved_priority = ticket.priority
            no_explore = not self.frontdoor.exploration_allowed(ticket)
        else:
            resolved_priority = "latency" if priority is None else priority
            no_explore = deadline is not None
        try:
            if self.trace_recorder is not None:
                # Tenant/priority only annotate traces when the front
                # door is on -- an anonymous server's spans (and golden
                # trace exports) stay byte-identical to before.  The
                # per-class SLO monitor observes either way.
                result = self._traced_request(
                    kind, lambda: fn(resolved_tenant, no_explore),
                    tenant=None if ticket is None else resolved_tenant,
                    priority=None if ticket is None else resolved_priority,
                    slo_class=resolved_priority,
                )
            else:
                result = fn(resolved_tenant, no_explore)
        finally:
            if ticket is not None:
                self.frontdoor.release(ticket)
        if (resolved_tenant != DEFAULT_TENANT
                or resolved_priority != "latency"):
            result = replace(
                result, tenant=resolved_tenant, priority=resolved_priority
            )
        if bb is not None:
            bb.record_request(
                result, kind=kind, wall=perf_counter() - t_flight
            )
        return result

    def _submit_inner(
        self, matrix: CSRMatrix, x: np.ndarray,
        tenant: str = DEFAULT_TENANT, *, no_explore: bool = False,
    ) -> SubmitResult:
        if self._scheduler is not None:
            return self._coalesced_submit(matrix, x, tenant)
        x = self._validate_rhs(matrix, x, batch=False)
        if self._selector is not None:
            return self._learned_request(
                matrix, no_explore, lambda: self._serve_spmv(matrix, x)
            )
        return self._serve_spmv(matrix, x)

    def _serve_spmv(self, matrix: CSRMatrix, x: np.ndarray) -> SubmitResult:
        """The single-RHS execution body (post-validation, post-decide)."""
        if self._sharded is not None:
            return self._sharded_submit(matrix, x, batch=False)
        plan, fp, hit = self._plan_for(matrix)
        if self._resilient is None:
            with span("serve.execute", self.registry) as sp:
                res: SpMVResult = run_plan_spmv(self.device, matrix, x, plan)
            self._account(sp.seconds, res.seconds, res.n_dispatches,
                          n_rhs=1, batch=False)
            return SubmitResult(
                y=res.u,
                seconds=res.seconds,
                n_dispatches=res.n_dispatches,
                cache_hit=hit,
                fingerprint=fp,
                plan=plan,
            )
        fb: Dict[str, ExecutionPlan] = {}  # built only if degradation hits

        def _fallback() -> SpMVResult:
            fb["plan"] = self._fallback_plan(matrix)
            return run_plan_spmv(
                unwrap_device(self.device), matrix, x, fb["plan"]
            )

        with span("serve.execute", self.registry) as sp:
            res, outcome = self._resilient.execute(
                fp,
                lambda: run_plan_spmv(self.device, matrix, x, plan),
                fallback=_fallback,
                validate=lambda r: bool(np.isfinite(r.u).all()),
                on_degrade=lambda cause: self._degrade_plan(fp, cause),
            )
        self._account(sp.seconds, res.seconds, res.n_dispatches,
                      n_rhs=1, batch=False)
        return SubmitResult(
            y=res.u,
            seconds=res.seconds,
            n_dispatches=res.n_dispatches,
            cache_hit=hit,
            fingerprint=fp,
            plan=fb["plan"] if outcome.degraded else plan,
            attempts=outcome.attempts,
            degraded=outcome.degraded,
        )

    def submit_batch(
        self,
        matrix: CSRMatrix,
        X: np.ndarray,
        *,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> SubmitResult:
        """Serve ``k`` right-hand sides in one request.

        Column ``j`` of the result is bit-identical to
        ``submit(matrix, X[:, j]).y``.  The plan and its binning
        overhead are charged once for the block; kernel launches are
        charged once per *pass* -- a single pass when ``k <= max_rhs``
        (or no cap is set), one pass per column block otherwise, since
        each block is physically a separate dispatch sequence (see
        :func:`~repro.serve.batch.run_plan_spmm`).

        ``tenant``/``priority``/``deadline`` behave as in
        :meth:`submit`; a k-wide batch costs the tenant one admission
        token (the front door admits *requests*, not columns).
        """
        self._check_open()
        return self._admitted_request(
            "batch",
            tenant=tenant, priority=priority, deadline=deadline,
            fn=lambda t, ne: self._direct_submit_batch(matrix, X,
                                                       no_explore=ne),
        )

    def _direct_submit_batch(
        self, matrix: CSRMatrix, X: np.ndarray, *, no_explore: bool = False,
    ) -> SubmitResult:
        """Batch path without the closed-check.

        The coalescing scheduler flushes its pending groups through
        this during :meth:`close` -- after ``_closed`` is already set,
        which is exactly why the public wrapper owns the check.
        """
        X = self._validate_rhs(matrix, X, batch=True)
        if self._selector is not None:
            return self._learned_request(
                matrix, no_explore, lambda: self._serve_spmm(matrix, X)
            )
        return self._serve_spmm(matrix, X)

    def _serve_spmm(self, matrix: CSRMatrix, X: np.ndarray) -> SubmitResult:
        """The multi-RHS execution body (post-validation, post-decide)."""
        if self._sharded is not None:
            return self._sharded_submit(matrix, X, batch=True)
        plan, fp, hit = self._plan_for(matrix)
        if self._resilient is None:
            with span("serve.execute", self.registry) as sp:
                res: SpMMResult = run_plan_spmm(
                    self.device, matrix, X, plan, max_rhs=self.max_rhs
                )
            self._account(sp.seconds, res.seconds, res.n_dispatches,
                          n_rhs=res.n_rhs, batch=True)
            return SubmitResult(
                y=res.U,
                seconds=res.seconds,
                n_dispatches=res.n_dispatches,
                cache_hit=hit,
                fingerprint=fp,
                plan=plan,
            )
        fb: Dict[str, ExecutionPlan] = {}  # built only if degradation hits

        def _fallback() -> SpMMResult:
            fb["plan"] = self._fallback_plan(matrix)
            return run_plan_spmm(
                unwrap_device(self.device), matrix, X, fb["plan"],
                max_rhs=self.max_rhs,
            )

        with span("serve.execute", self.registry) as sp:
            res, outcome = self._resilient.execute(
                fp,
                lambda: run_plan_spmm(
                    self.device, matrix, X, plan, max_rhs=self.max_rhs
                ),
                fallback=_fallback,
                validate=lambda r: bool(np.isfinite(r.U).all()),
                on_degrade=lambda cause: self._degrade_plan(fp, cause),
            )
        self._account(sp.seconds, res.seconds, res.n_dispatches,
                      n_rhs=res.n_rhs, batch=True)
        return SubmitResult(
            y=res.U,
            seconds=res.seconds,
            n_dispatches=res.n_dispatches,
            cache_hit=hit,
            fingerprint=fp,
            plan=fb["plan"] if outcome.degraded else plan,
            attempts=outcome.attempts,
            degraded=outcome.degraded,
        )

    def _account(
        self,
        execute_wall: float,
        seconds: float,
        launches: int,
        *,
        n_rhs: int,
        batch: bool,
    ) -> None:
        with self._lock:
            self._requests += 1
            self._batch_requests += 1 if batch else 0
            self._rhs_served += n_rhs
            self._dispatch_sequences += 1
            self._kernel_launches += launches
            self._simulated_seconds += seconds
            self._stage_seconds["execute"] += execute_wall
        self._m_requests["batch" if batch else "single"].inc()
        self._m_rhs.inc(n_rhs)
        self._m_launches.inc(launches)
        self._m_sim_seconds.inc(seconds)
        self._m_stage["execute"].observe(execute_wall)

    # -- cache control ---------------------------------------------------
    def invalidate(self, matrix: CSRMatrix) -> bool:
        """Drop every cached artefact for this matrix's pattern.

        Invalidation must reach every layer that memoised something
        derived from the pattern, or "invalidated" traffic keeps being
        served from stale state:

        - the matrix's identity-cache entry, so the next submit of this
          object re-hashes its (possibly rebuilt) structure instead of
          trusting the memoised fingerprint;
        - the plan-cache entry for the pattern;
        - when sharded: the sharded executor's (descriptors, plans)
          shard set, its per-shard plan-cache entries, and -- on the
          process backend -- the pre-pickled spec blobs plus a
          generation bump that forces worker-side bound-plan caches to
          rebind on the next dispatch.

        Returns True when any cached state was dropped.
        """
        fp = self._fingerprints.fingerprint(matrix)
        self._fingerprints.invalidate(matrix)
        dropped = self.cache.invalidate(fp)
        if self._sharded is not None:
            dropped |= self._sharded.invalidate(fp.digest)
        return dropped

    def clear_cache(self) -> None:
        """Drop every cached plan *and* cached identity (counters survive).

        Clears all three memoisation layers together: the plan cache,
        the fingerprint identity cache (so every live matrix object
        re-hashes on its next submit), and -- when sharded -- the shard
        layer's shard sets, per-shard plans and backend blobs, with a
        generation bump so process-backend workers rebind.  Leaving any
        of them warm would make "clear" a lie: a post-clear submit must
        behave exactly like a first request, except that results are of
        course unchanged.
        """
        self.cache.clear()
        self._fingerprints.clear()
        if self._sharded is not None:
            self._sharded.clear_caches()

    # -- observability ---------------------------------------------------
    def stats(self) -> ServerStats:
        """Immutable snapshot of all serving counters."""
        with self._lock:
            return ServerStats(
                requests=self._requests,
                batch_requests=self._batch_requests,
                rhs_served=self._rhs_served,
                dispatch_sequences=self._dispatch_sequences,
                kernel_launches=self._kernel_launches,
                simulated_seconds=self._simulated_seconds,
                stage_seconds=dict(self._stage_seconds),
                cache=self.cache.stats(),
                resilience=(
                    self._resilient.stats()
                    if self._resilient is not None else
                    self._sharded.resilience_stats()
                    if self._sharded is not None
                    and self._sharded.resilience is not None else None
                ),
                scheduler=(
                    self._scheduler.stats()
                    if self._scheduler is not None else None
                ),
                shards=(
                    self._sharded.stats()
                    if self._sharded is not None else None
                ),
                fingerprints=self._fingerprints.stats(),
                frontdoor=(
                    self.frontdoor.stats()
                    if self.frontdoor is not None else None
                ),
                learning=(
                    self._selector.stats()
                    if self._selector is not None else None
                ),
                blackbox=(
                    self.blackbox.stats()
                    if self.blackbox is not None else None
                ),
            )
