"""LRU cache of execution plans keyed by matrix fingerprint.

The cache is the amortisation mechanism of the serving layer: the first
request for a sparsity pattern pays feature extraction + classifier
consultation + binning; every later request with the same pattern reuses
the stored :class:`~repro.core.plan.ExecutionPlan` object unchanged.
Capacity is bounded (a server holding plans for millions of distinct
patterns would itself become the memory problem), with
least-recently-used eviction and observable hit/miss/eviction counters.

Concurrency: every operation takes an internal ``RLock``, so concurrent
``submit`` traffic from a thread pool cannot corrupt the ``OrderedDict``
or lose counter increments.  :meth:`get_or_build` holds the lock across
the builder call -- planning a pattern exactly once under concurrent
first requests (no thundering herd of duplicate planner runs) is worth
serialising the miss path; hits only take the lock briefly.

Observability: the hit/miss/eviction tallies are
:class:`~repro.observe.Counter` instruments (per-instance, read by the
:meth:`stats` compat shim exactly like the old bare ints), and the cache
additionally feeds the registry's aggregate ``plan_cache_*`` metrics and
emits a ``cache_eviction`` event per evicted entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.plan import ExecutionPlan
from repro.observe.registry import Counter, MetricsRegistry, get_registry
from repro.serve.fingerprint import MatrixFingerprint

__all__ = ["CacheStats", "PlanCache"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`PlanCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    #: Entries dropped explicitly (device change, plan degradation).
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, size={self.size}/{self.capacity}, "
            f"hit_rate={self.hit_rate:.1%})"
        )


class PlanCache:
    """Bounded fingerprint -> :class:`ExecutionPlan` LRU map (thread-safe).

    Parameters
    ----------
    capacity:
        Bound on stored plans; least-recently-used entries evict first.
    registry:
        Metrics registry receiving the aggregate ``plan_cache_*``
        counters, size gauge and ``cache_eviction`` events.  Defaults to
        the process-global registry; pass
        :data:`~repro.observe.NULL_REGISTRY` to opt out.
    """

    def __init__(
        self,
        capacity: int = 128,
        *,
        registry: Optional[MetricsRegistry] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.RLock()
        self._entries: "OrderedDict[MatrixFingerprint, ExecutionPlan]" = (
            OrderedDict()
        )
        # Per-instance tallies as metric instruments (the stats() shim
        # reads .value where it used to read bare ints).
        self._hits = Counter("plan_cache_hits")
        self._misses = Counter("plan_cache_misses")
        self._evictions = Counter("plan_cache_evictions")
        self._invalidations = Counter("plan_cache_invalidations")
        # Registry-level aggregates (shared across caches on purpose).
        self._registry = get_registry() if registry is None else registry
        self._m_hits = self._registry.counter(
            "plan_cache_hits_total",
            help_text="Plan-cache lookups served from cache.",
        )
        self._m_misses = self._registry.counter(
            "plan_cache_misses_total",
            help_text="Plan-cache lookups that had to build a plan.",
        )
        self._m_evictions = self._registry.counter(
            "plan_cache_evictions_total",
            help_text="Plans evicted by the LRU bound.",
        )
        self._m_invalidations = self._registry.counter(
            "plan_cache_invalidations_total",
            help_text="Plans dropped explicitly (invalidate calls that "
                      "found an entry).",
        )
        self._m_size = self._registry.gauge(
            "plan_cache_size", help_text="Plans currently cached."
        )

    # -- lookups ---------------------------------------------------------
    def get(self, fp: MatrixFingerprint) -> Optional[ExecutionPlan]:
        """The cached plan for ``fp`` (refreshing recency), else ``None``."""
        with self._lock:
            plan = self._entries.get(fp)
            if plan is None:
                self._misses.inc()
                self._m_misses.inc()
                return None
            self._entries.move_to_end(fp)
            self._hits.inc()
            self._m_hits.inc()
            return plan

    def put(self, fp: MatrixFingerprint, plan: ExecutionPlan) -> None:
        """Insert (or refresh) a plan, evicting the LRU entry if full."""
        with self._lock:
            if fp in self._entries:
                self._entries.move_to_end(fp)
            self._entries[fp] = plan
            while len(self._entries) > self.capacity:
                evicted_fp, _ = self._entries.popitem(last=False)
                self._evictions.inc()
                self._m_evictions.inc()
                self._registry.emit(
                    "cache_eviction",
                    fingerprint=str(evicted_fp),
                    size=len(self._entries),
                    capacity=self.capacity,
                )
            self._m_size.set(len(self._entries))

    def get_or_build(
        self,
        fp: MatrixFingerprint,
        builder: Callable[[], ExecutionPlan],
    ) -> tuple[ExecutionPlan, bool]:
        """``(plan, was_hit)``; runs ``builder`` and stores on a miss.

        Holds the cache lock across ``builder`` so one pattern is never
        planned twice by racing first requests.
        """
        with self._lock:
            plan = self.get(fp)
            if plan is not None:
                return plan, True
            plan = builder()
            self.put(fp, plan)
            return plan, False

    # -- invalidation ----------------------------------------------------
    def invalidate(self, fp: MatrixFingerprint) -> bool:
        """Drop one entry (device change, plan degradation); True if present.

        The resilient serving path calls this when a cached plan keeps
        failing, so the next request for the pattern re-plans instead of
        replaying the bad plan forever.
        """
        with self._lock:
            present = self._entries.pop(fp, None) is not None
            if present:
                self._invalidations.inc()
                self._m_invalidations.inc()
            self._m_size.set(len(self._entries))
            return present

    def clear(self) -> None:
        """Drop every entry; counters are preserved."""
        with self._lock:
            self._entries.clear()
            self._m_size.set(0)

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fp: MatrixFingerprint) -> bool:
        with self._lock:
            return fp in self._entries

    def stats(self) -> CacheStats:
        """Immutable snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=int(self._hits.value),
                misses=int(self._misses.value),
                evictions=int(self._evictions.value),
                size=len(self._entries),
                capacity=self.capacity,
                invalidations=int(self._invalidations.value),
            )
