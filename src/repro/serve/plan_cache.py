"""LRU cache of execution plans keyed by matrix fingerprint.

The cache is the amortisation mechanism of the serving layer: the first
request for a sparsity pattern pays feature extraction + classifier
consultation + binning; every later request with the same pattern reuses
the stored :class:`~repro.core.plan.ExecutionPlan` object unchanged.
Capacity is bounded (a server holding plans for millions of distinct
patterns would itself become the memory problem), with
least-recently-used eviction and observable hit/miss/eviction counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.plan import ExecutionPlan
from repro.serve.fingerprint import MatrixFingerprint

__all__ = ["CacheStats", "PlanCache"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`PlanCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, size={self.size}/{self.capacity}, "
            f"hit_rate={self.hit_rate:.1%})"
        )


class PlanCache:
    """Bounded fingerprint -> :class:`ExecutionPlan` LRU map."""

    def __init__(self, capacity: int = 128):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[MatrixFingerprint, ExecutionPlan]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- lookups ---------------------------------------------------------
    def get(self, fp: MatrixFingerprint) -> Optional[ExecutionPlan]:
        """The cached plan for ``fp`` (refreshing recency), else ``None``."""
        plan = self._entries.get(fp)
        if plan is None:
            self._misses += 1
            return None
        self._entries.move_to_end(fp)
        self._hits += 1
        return plan

    def put(self, fp: MatrixFingerprint, plan: ExecutionPlan) -> None:
        """Insert (or refresh) a plan, evicting the LRU entry if full."""
        if fp in self._entries:
            self._entries.move_to_end(fp)
        self._entries[fp] = plan
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def get_or_build(
        self,
        fp: MatrixFingerprint,
        builder: Callable[[], ExecutionPlan],
    ) -> tuple[ExecutionPlan, bool]:
        """``(plan, was_hit)``; runs ``builder`` and stores on a miss."""
        plan = self.get(fp)
        if plan is not None:
            return plan, True
        plan = builder()
        self.put(fp, plan)
        return plan, False

    # -- invalidation ----------------------------------------------------
    def invalidate(self, fp: MatrixFingerprint) -> bool:
        """Drop one entry (e.g. after a device-spec change); True if present."""
        return self._entries.pop(fp, None) is not None

    def clear(self) -> None:
        """Drop every entry; counters are preserved."""
        self._entries.clear()

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fp: MatrixFingerprint) -> bool:
        return fp in self._entries

    def stats(self) -> CacheStats:
        """Immutable snapshot of the counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )
