"""Argument-validation helpers.

These helpers centralise the defensive checks used across the library so
error messages are consistent and each call site stays one line long.
They raise built-in exception types (``ValueError`` / ``TypeError``) for
programming errors; domain errors use :mod:`repro.errors`.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = ["check_1d", "check_dtype", "check_positive", "check_probability"]


def check_1d(arr: np.ndarray, name: str) -> np.ndarray:
    """Return ``arr`` as a 1-D :class:`numpy.ndarray`.

    Parameters
    ----------
    arr:
        Array-like to validate.
    name:
        Name used in the error message.

    Raises
    ------
    ValueError
        If the array has a dimensionality other than one.
    """
    out = np.asarray(arr)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got ndim={out.ndim}")
    return out


def check_dtype(arr: np.ndarray, kinds: str, name: str) -> np.ndarray:
    """Validate that ``arr.dtype.kind`` is one of ``kinds``.

    ``kinds`` is a string of NumPy dtype-kind characters, e.g. ``"iu"``
    for signed/unsigned integers or ``"f"`` for floats.
    """
    out = np.asarray(arr)
    if out.dtype.kind not in kinds:
        raise TypeError(
            f"{name} must have dtype kind in {sorted(kinds)}, got {out.dtype}"
        )
    return out


def check_positive(value: numbers.Real, name: str, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive.

    With ``strict=False`` zero is accepted as well.
    """
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def check_probability(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the closed unit interval."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not 0.0 <= float(value) <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
