"""Argument-validation helpers.

These helpers centralise the defensive checks used across the library so
error messages are consistent and each call site stays one line long.
They raise built-in exception types (``ValueError`` / ``TypeError``) for
programming errors; domain errors use :mod:`repro.errors` (the operand
checks below raise :class:`~repro.errors.ShapeError`, the error every
execution surface promises for malformed SpMV/SpMM operands).
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "check_1d",
    "check_dtype",
    "check_positive",
    "check_probability",
    "check_spmv_operand",
    "check_spmm_operand",
]

#: NumPy dtype kinds accepted as SpMV/SpMM operand values.
_NUMERIC_KINDS = "fiub"


def check_spmv_operand(ncols: int, v: np.ndarray) -> np.ndarray:
    """Validate an SpMV right-hand side; return it as float64.

    Raises :class:`~repro.errors.ShapeError` for a non-numeric dtype or
    a shape other than ``(ncols,)`` -- *before* any execution or cache
    mutation can happen downstream.
    """
    v = np.asarray(v)
    if v.dtype.kind not in _NUMERIC_KINDS:
        raise ShapeError(
            f"operand dtype {v.dtype} is not numeric (expected float/int/bool)"
        )
    if v.shape != (ncols,):
        raise ShapeError(f"vector has shape {v.shape}, expected ({ncols},)")
    return np.asarray(v, dtype=np.float64)


def check_spmm_operand(ncols: int, dense: np.ndarray) -> np.ndarray:
    """Validate a multi-RHS block; return it as float64 ``(ncols, k)``."""
    dense = np.asarray(dense)
    if dense.dtype.kind not in _NUMERIC_KINDS:
        raise ShapeError(
            f"operand dtype {dense.dtype} is not numeric "
            f"(expected float/int/bool)"
        )
    if dense.ndim != 2 or dense.shape[0] != ncols:
        raise ShapeError(
            f"operand has shape {dense.shape}, expected ({ncols}, k)"
        )
    return np.asarray(dense, dtype=np.float64)


def check_1d(arr: np.ndarray, name: str) -> np.ndarray:
    """Return ``arr`` as a 1-D :class:`numpy.ndarray`.

    Parameters
    ----------
    arr:
        Array-like to validate.
    name:
        Name used in the error message.

    Raises
    ------
    ValueError
        If the array has a dimensionality other than one.
    """
    out = np.asarray(arr)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got ndim={out.ndim}")
    return out


def check_dtype(arr: np.ndarray, kinds: str, name: str) -> np.ndarray:
    """Validate that ``arr.dtype.kind`` is one of ``kinds``.

    ``kinds`` is a string of NumPy dtype-kind characters, e.g. ``"iu"``
    for signed/unsigned integers or ``"f"`` for floats.
    """
    out = np.asarray(arr)
    if out.dtype.kind not in kinds:
        raise TypeError(
            f"{name} must have dtype kind in {sorted(kinds)}, got {out.dtype}"
        )
    return out


def check_positive(value: numbers.Real, name: str, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive.

    With ``strict=False`` zero is accepted as well.
    """
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def check_probability(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the closed unit interval."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not 0.0 <= float(value) <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
