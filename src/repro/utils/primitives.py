"""Parallel-algorithm primitives mirrored from the GPU building blocks.

The paper's kernels are built from three primitives: prefix sums (used to
build CSR row pointers and bin offsets), segmented reductions (the
``seg_parallel_red`` of *Kernel-SubvectorX*), and full work-group tree
reductions (the ``parallel_red`` of *Kernel-Vector*).  This module
implements each of them with vectorised NumPy.

:func:`segmented_reduce_tree` deliberately reproduces the *association
order* of a binary tree reduction (pairwise halving) rather than calling
``np.sum``, so that the floating-point result of the simulated kernels
matches what the OpenCL kernels would produce lane-for-lane.  The cheap
``reduceat``-based :func:`segmented_sum` is used on cost-model paths where
association order does not matter.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "segment_ids_from_offsets",
    "segmented_sum",
    "segmented_sum_2d",
    "segmented_max",
    "segmented_reduce_tree",
]


def inclusive_scan(values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum of a 1-D array (``out[i] = sum(values[:i+1])``)."""
    values = check_1d(values, "values")
    return np.cumsum(values)


def exclusive_scan(values: np.ndarray, *, dtype=None) -> np.ndarray:
    """Exclusive prefix sum with the total appended.

    Returns an array of length ``len(values) + 1`` whose first element is
    zero and whose last element is the grand total -- exactly the shape of
    a CSR ``rowptr`` built from per-row counts.

    >>> exclusive_scan(np.array([1, 2, 3]))
    array([0, 1, 3, 6])
    """
    values = check_1d(values, "values")
    if dtype is None:
        dtype = values.dtype if values.dtype.kind in "iu" else np.int64
    out = np.zeros(len(values) + 1, dtype=dtype)
    np.cumsum(values, out=out[1:])
    return out


def segment_ids_from_offsets(offsets: np.ndarray, total: int | None = None) -> np.ndarray:
    """Expand CSR-style ``offsets`` into one segment id per element.

    ``offsets`` has length ``nsegments + 1``; the result has length
    ``offsets[-1]`` (or ``total`` if given, which must match) and maps each
    element to the segment containing it.  Empty segments are skipped.

    >>> segment_ids_from_offsets(np.array([0, 2, 2, 5]))
    array([0, 0, 2, 2, 2])
    """
    offsets = check_1d(offsets, "offsets")
    if len(offsets) == 0:
        raise ValueError("offsets must have at least one element")
    n = int(offsets[-1])
    if total is not None and total != n:
        raise ValueError(f"total={total} does not match offsets[-1]={n}")
    nseg = len(offsets) - 1
    ids = np.zeros(n, dtype=np.int64)
    starts = offsets[:-1]
    # Mark segment starts; empty segments contribute repeated marks that
    # accumulate correctly under cumsum of scattered +1 deltas.
    np.add.at(ids, starts[starts < n], 1)
    np.cumsum(ids, out=ids)
    ids -= 1
    # Elements before the first non-empty segment start cannot exist
    # (offsets[0] is by convention 0), but guard anyway.
    np.clip(ids, 0, max(nseg - 1, 0), out=ids)
    return ids


def segmented_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums for CSR-style ``offsets`` (empty segments -> 0)."""
    values = check_1d(values, "values")
    offsets = check_1d(offsets, "offsets")
    nseg = len(offsets) - 1
    if nseg <= 0:
        return np.zeros(0, dtype=values.dtype)
    out = np.zeros(nseg, dtype=np.result_type(values.dtype, np.float64)
                   if values.dtype.kind == "f" else values.dtype)
    starts = np.asarray(offsets[:-1], dtype=np.int64)
    ends = np.asarray(offsets[1:], dtype=np.int64)
    nonempty = ends > starts
    if not np.any(nonempty):
        return out
    # ``reduceat`` misbehaves on empty segments (repeats the next value),
    # so reduce only the non-empty ones and scatter back.
    red = np.add.reduceat(values, starts[nonempty])
    out[nonempty] = red
    return out


def segmented_sum_2d(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Row-segment sums of a 2-D array (empty segments -> zero rows).

    ``values`` has shape ``(n, k)``; segment boundaries along axis 0 come
    from CSR-style ``offsets``.  Column ``j`` of the result is exactly
    ``segmented_sum(values[:, j], offsets)`` -- ``reduceat`` adds the
    same elements in the same order whether it walks a 1-D column or
    axis 0 of the 2-D block, so the batched SpMV path stays bit-identical
    to ``k`` independent single-vector passes.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D, got ndim={values.ndim}")
    offsets = check_1d(offsets, "offsets")
    nseg = len(offsets) - 1
    k = values.shape[1]
    if nseg <= 0:
        return np.zeros((0, k), dtype=values.dtype)
    out = np.zeros((nseg, k), dtype=np.result_type(values.dtype, np.float64)
                   if values.dtype.kind == "f" else values.dtype)
    starts = np.asarray(offsets[:-1], dtype=np.int64)
    ends = np.asarray(offsets[1:], dtype=np.int64)
    nonempty = ends > starts
    if not np.any(nonempty) or k == 0:
        return out
    out[nonempty] = np.add.reduceat(values, starts[nonempty], axis=0)
    return out


def segmented_max(values: np.ndarray, offsets: np.ndarray, *, empty=0) -> np.ndarray:
    """Per-segment maxima for CSR-style ``offsets`` (empty segments -> ``empty``)."""
    values = check_1d(values, "values")
    offsets = check_1d(offsets, "offsets")
    nseg = len(offsets) - 1
    if nseg <= 0:
        return np.zeros(0, dtype=values.dtype)
    out = np.full(nseg, empty, dtype=values.dtype)
    starts = np.asarray(offsets[:-1], dtype=np.int64)
    ends = np.asarray(offsets[1:], dtype=np.int64)
    nonempty = ends > starts
    if not np.any(nonempty):
        return out
    out[nonempty] = np.maximum.reduceat(values, starts[nonempty])
    return out


def segmented_reduce_tree(buffer: np.ndarray, seg_width: int) -> np.ndarray:
    """Tree-reduce every ``seg_width`` consecutive elements of ``buffer``.

    This reproduces the pairwise association order of the GPU segmented
    parallel reduction: at step ``s`` lane ``i`` adds lane ``i + 2**s``
    within its segment.  ``seg_width`` must be a power of two and must
    divide ``len(buffer)``.

    Returns one value per segment (the value lane 0 would hold).
    """
    buffer = check_1d(buffer, "buffer")
    if seg_width <= 0 or (seg_width & (seg_width - 1)) != 0:
        raise ValueError(f"seg_width must be a positive power of two, got {seg_width}")
    if len(buffer) % seg_width != 0:
        raise ValueError(
            f"buffer length {len(buffer)} is not a multiple of seg_width {seg_width}"
        )
    work = buffer.reshape(-1, seg_width).copy()
    stride = seg_width // 2
    while stride >= 1:
        work[:, :stride] += work[:, stride : 2 * stride]
        stride //= 2
    return work[:, 0].copy()
