"""Seeded random-number-generator plumbing.

Every stochastic component in the library (matrix generators, corpus
sampling, train/test splits, boosting resampling) accepts a ``seed``
argument that may be ``None``, an ``int``, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_generator` normalises all
three into a ``Generator`` so downstream code never touches the legacy
``numpy.random`` global state -- a determinism requirement called out in
DESIGN.md.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["as_generator", "spawn_generators"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing ``Generator`` returns it unchanged, so stateful
    sampling pipelines can thread one generator through many calls.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent child generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children are
    statistically independent regardless of how many are requested -- the
    recommended pattern for parallel/fan-out workloads.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a fresh sequence from the generator's bit stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
