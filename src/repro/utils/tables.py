"""Plain-text table and series rendering for the benchmark harness.

The benchmark scripts reproduce the paper's tables and figures as text:
tables render with aligned columns, figures render as labelled series
(rows of ``label: value`` pairs) plus optional ASCII bar charts so that
the *shape* of each figure is visible directly in CI logs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "ascii_bars"]


def _fmt(value: object, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    floatfmt: str = ".3g",
    title: str | None = None,
) -> str:
    """Render ``rows`` as a fixed-width text table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    str_rows = [[_fmt(v, floatfmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_series(
    series: Mapping[str, float],
    *,
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render a label->value mapping one pair per line, labels aligned."""
    if not series:
        return title or ""
    width = max(len(k) for k in series)
    lines = [title] if title else []
    for key, value in series.items():
        lines.append(f"{key.ljust(width)} : {_fmt(float(value), floatfmt)}")
    return "\n".join(lines)


def ascii_bars(
    series: Mapping[str, float],
    *,
    width: int = 40,
    floatfmt: str = ".3g",
    title: str | None = None,
) -> str:
    """Render a label->value mapping as a horizontal ASCII bar chart.

    Values must be non-negative; the longest bar spans ``width`` chars.
    """
    if not series:
        return title or ""
    vmax = max(series.values())
    if vmax < 0 or any(v < 0 for v in series.values()):
        raise ValueError("ascii_bars requires non-negative values")
    label_w = max(len(k) for k in series)
    lines = [title] if title else []
    for key, value in series.items():
        n = 0 if vmax == 0 else int(round(width * value / vmax))
        lines.append(f"{key.ljust(label_w)} |{'#' * n} {_fmt(float(value), floatfmt)}")
    return "\n".join(lines)
