"""Wall-clock timing helpers for the real (non-simulated) execution paths.

The simulated APU reports time from its cycle model; the multi-core CPU
path (:mod:`repro.device.cpu`) and the binning-overhead experiments also
measure *real* wall-clock time, for which this module provides a small
context-manager timer with repeat/summary support, following the
"no optimisation without measuring" workflow from the HPC guides.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Timer", "best_of"]


@dataclass
class Timer:
    """Context-manager wall-clock timer accumulating laps.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed > 0
    True
    """

    laps: list[float] = field(default_factory=list)
    _start: Optional[float] = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is None:  # pragma: no cover - defensive
            raise RuntimeError("Timer.__exit__ called without __enter__")
        self.laps.append(time.perf_counter() - self._start)
        self._start = None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds across all laps."""
        return sum(self.laps)

    @property
    def mean(self) -> float:
        """Mean lap duration in seconds (``0.0`` when no laps recorded)."""
        return statistics.fmean(self.laps) if self.laps else 0.0

    @property
    def best(self) -> float:
        """Fastest lap in seconds (``0.0`` when no laps recorded)."""
        return min(self.laps) if self.laps else 0.0

    def reset(self) -> None:
        """Discard all recorded laps."""
        self.laps.clear()


def best_of(fn: Callable[[], object], *, repeats: int = 3) -> float:
    """Run ``fn`` ``repeats`` times and return the fastest wall-clock time.

    Taking the minimum over repeats is the standard way to suppress
    scheduling noise when micro-benchmarking on a shared machine.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
