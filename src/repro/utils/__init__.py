"""Shared low-level utilities used by every other subpackage.

The modules here deliberately have no dependencies on the rest of the
library (only NumPy), so they can be imported from anywhere without
creating cycles:

- :mod:`repro.utils.validation` -- argument checking helpers.
- :mod:`repro.utils.rng` -- seeded random-generator plumbing.
- :mod:`repro.utils.timing` -- wall-clock timers for the real CPU path.
- :mod:`repro.utils.primitives` -- scan / segmented-reduction primitives
  mirroring the GPU building blocks the paper's kernels rely on.
- :mod:`repro.utils.tables` -- plain-text table rendering for the
  benchmark harness reports.
"""

from repro.utils.primitives import (
    exclusive_scan,
    inclusive_scan,
    segment_ids_from_offsets,
    segmented_max,
    segmented_reduce_tree,
    segmented_sum,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_1d,
    check_dtype,
    check_positive,
    check_probability,
)

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "segment_ids_from_offsets",
    "segmented_max",
    "segmented_reduce_tree",
    "segmented_sum",
    "as_generator",
    "spawn_generators",
    "Timer",
    "check_1d",
    "check_dtype",
    "check_positive",
    "check_probability",
]
