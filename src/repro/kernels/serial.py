"""Kernel-Serial: one thread per row (the paper's Algorithm 3).

Each of the 256 threads in a work-group walks one row sequentially and
accumulates into a register.  Powerful for bins of very short rows;
suffers on long rows from (a) SIMD divergence -- a wavefront runs until
its *longest* row finishes -- and (b) uncoalesced streams -- lane ``i``'s
loads are spaced by row ``i``'s length, so wide rows turn every 12-byte
element into its own cache-line transaction once the wavefront's reuse
window overflows the L1.
"""

from __future__ import annotations

import numpy as np

from repro.device.dispatch import DispatchStats
from repro.device.memory import (
    CSR_ELEMENT_BYTES,
    VALUE_BYTES,
    gather_lines,
    serial_waste_factor,
    stream_lines,
)
from repro.device.spec import DeviceSpec
from repro.formats.csr import CSRMatrix
from repro.kernels.base import (
    ROW_OVERHEAD_INSTR,
    WAVE_OVERHEAD_INSTR,
    Kernel,
    pad_reshape,
    row_products,
)

__all__ = ["SerialKernel"]

#: Wavefront instructions per inner-loop iteration: address arithmetic,
#: colidx load, val load, v gather, FMA, loop bookkeeping.
INSTR_PER_ITER = 6.0


class SerialKernel(Kernel):
    """One thread per row; sequential accumulation (Algorithm 3)."""

    name = "serial"

    def compute(
        self,
        matrix: CSRMatrix,
        v: np.ndarray,
        rows: np.ndarray,
        *,
        emulate: bool = False,
    ) -> np.ndarray:
        if not emulate:
            return self._fast_row_dots(matrix, v, rows)
        # Lane-faithful: strictly left-to-right accumulation per row,
        # matching the OpenCL kernel's scalar loop.
        products, offsets = row_products(matrix, v, rows)
        out = np.zeros(len(rows))
        for i in range(len(rows)):
            acc = 0.0
            for j in range(int(offsets[i]), int(offsets[i + 1])):
                acc += products[j]
            out[i] = acc
        return out

    def cost(
        self,
        row_lengths: np.ndarray,
        locality: float,
        spec: DeviceSpec,
    ) -> DispatchStats:
        lengths = np.asarray(row_lengths, dtype=np.float64)
        n_rows = len(lengths)
        if n_rows == 0:
            return DispatchStats.empty()
        w = spec.wavefront_size
        windows = pad_reshape(lengths, w)
        iters = windows.max(axis=1)  # divergence: wave runs to max row
        elems = windows.sum(axis=1)

        compute = float(
            (iters * INSTR_PER_ITER).sum()
            + len(iters) * WAVE_OVERHEAD_INSTR
            + n_rows * ROW_OVERHEAD_INSTR
        )
        longest = float(iters.max() * INSTR_PER_ITER + WAVE_OVERHEAD_INSTR)

        # Strided streams: per-window waste grows with the mean row length.
        mean_len = elems / w
        matrix_lines = float(
            (
                stream_lines(elems * CSR_ELEMENT_BYTES, spec)
                * serial_waste_factor(mean_len, spec)
            ).sum()
        )
        vec_lines = float(gather_lines(elems, locality, spec).sum())
        aux_lines = float(
            stream_lines(n_rows * (3 * VALUE_BYTES), spec)
        )  # rowptr pair + u store + bin index

        return DispatchStats(
            compute_instructions=compute,
            longest_wave_instructions=longest,
            longest_dependent_iterations=float(iters.max()),
            memory_lines=matrix_lines + vec_lines + aux_lines,
            n_waves=float(len(iters)),
            n_workgroups=float(-(-n_rows // spec.workgroup_size)),
            lds_bytes_per_wg=0,
        )
