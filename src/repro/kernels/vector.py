"""Kernel-Vector: one full work-group per row (the paper's Algorithm 5).

All 256 threads of a work-group cooperate on a single row: each round
stages ``factor * 256`` products into local memory and tree-reduces
across the whole group (crossing wavefront boundaries, hence real
barriers).  The right tool for bins of very long rows; on short rows
almost every lane idles and the per-row work-group launch dominates.
"""

from __future__ import annotations

import numpy as np

from repro.device.dispatch import DispatchStats
from repro.device.memory import (
    CSR_ELEMENT_BYTES,
    VALUE_BYTES,
    gather_lines,
    stream_lines,
)
from repro.device.spec import DeviceSpec
from repro.formats.csr import CSRMatrix
from repro.kernels.base import (
    ROW_OVERHEAD_INSTR,
    WAVE_OVERHEAD_INSTR,
    Kernel,
    row_products,
)
from repro.kernels.subvector import (
    BASE_INSTR_PER_ROUND,
    FACTOR,
    INSTR_PER_CROSS_WAVE_BARRIER,
    INSTR_PER_REDUCE_STEP,
)
from repro.utils.primitives import segmented_reduce_tree

__all__ = ["VectorKernel"]


class VectorKernel(Kernel):
    """Whole 256-thread work-group per row (Algorithm 5)."""

    name = "vector"

    def compute(
        self,
        matrix: CSRMatrix,
        v: np.ndarray,
        rows: np.ndarray,
        *,
        emulate: bool = False,
    ) -> np.ndarray:
        if not emulate:
            return self._fast_row_dots(matrix, v, rows)
        products, offsets = row_products(matrix, v, rows)
        out = np.zeros(len(rows))
        group = 256
        chunk = FACTOR * group
        for i in range(len(rows)):
            start, end = int(offsets[i]), int(offsets[i + 1])
            acc = 0.0
            for round_start in range(start, end, chunk):
                lanes = np.zeros(group)
                for t in range(group):
                    lane_acc = 0.0
                    for k in range(FACTOR):
                        j = round_start + t + k * group
                        if j < end:
                            lane_acc += products[j]
                    lanes[t] = lane_acc
                acc += float(segmented_reduce_tree(lanes, group)[0])
            out[i] = acc
        return out

    def cost(
        self,
        row_lengths: np.ndarray,
        locality: float,
        spec: DeviceSpec,
    ) -> DispatchStats:
        lengths = np.asarray(row_lengths, dtype=np.float64)
        n_rows = len(lengths)
        if n_rows == 0:
            return DispatchStats.empty()
        group = spec.workgroup_size
        waves_per_row = spec.waves_per_workgroup
        chunk = FACTOR * group
        rounds = np.ceil(np.maximum(lengths, 1) / chunk)

        # The reduction tree spans wavefront boundaries while the stride
        # exceeds one wavefront (log2(group/wavefront) steps) plus the
        # staging barriers -- each a real cross-wave synchronisation.
        cross_wave_steps = np.log2(group / spec.wavefront_size) + 2.0
        instr_per_round = (
            BASE_INSTR_PER_ROUND
            + INSTR_PER_REDUCE_STEP * np.log2(group)
            + cross_wave_steps * INSTR_PER_CROSS_WAVE_BARRIER
        )

        compute = float(
            (rounds * instr_per_round).sum() * waves_per_row
            + n_rows * waves_per_row * WAVE_OVERHEAD_INSTR
            + n_rows * ROW_OVERHEAD_INSTR
        )
        longest = float(rounds.max() * instr_per_round + WAVE_OVERHEAD_INSTR)

        matrix_lines = float(
            (
                stream_lines(lengths * CSR_ELEMENT_BYTES, spec)
                + rounds * waves_per_row
            ).sum()
        )
        vec_lines = float(gather_lines(lengths, locality, spec).sum())
        aux_lines = float(stream_lines(n_rows * (3 * VALUE_BYTES), spec))

        lds_per_wg = group * FACTOR * VALUE_BYTES
        return DispatchStats(
            compute_instructions=compute,
            longest_wave_instructions=longest,
            longest_dependent_iterations=float(rounds.max()),
            memory_lines=matrix_lines + vec_lines + aux_lines,
            n_waves=float(n_rows * waves_per_row),
            n_workgroups=float(n_rows),
            lds_bytes_per_wg=lds_per_wg,
        )
