"""The SpMV kernel pool.

Nine kernels with identical semantics (``u[rows] = A[rows, :] @ v``) but
different thread organisations, exactly the paper's §III-B candidate
pool:

- ``serial`` -- one thread per row (Algorithm 3),
- ``subvector2 ... subvector128`` -- ``X`` threads per row with LDS
  staging and segmented parallel reduction (Algorithm 4).  The paper
  lists X in {2, 4, 16, 32, 64, 128} but counts *nine* kernels total;
  we include X = 8 so that serial + 7 subvector variants + vector = 9
  (discrepancy documented in DESIGN.md),
- ``vector`` -- the whole 256-thread work-group per row (Algorithm 5).

Every kernel exposes:

- :meth:`~repro.kernels.base.Kernel.compute` -- the actual arithmetic,
  with an ``emulate=True`` mode that reproduces the OpenCL kernel's
  staging loops and tree-reduction association order lane by lane, and a
  vectorised fast path used by the executor (identical up to FP
  rounding);
- :meth:`~repro.kernels.base.Kernel.cost` -- the analytical
  :class:`~repro.device.dispatch.DispatchStats` of launching the kernel
  over a bin with the given row lengths.
"""

from repro.kernels.base import Kernel
from repro.kernels.registry import (
    DEFAULT_KERNEL_NAMES,
    SUBVECTOR_WIDTHS,
    get_kernel,
    kernel_registry,
)
from repro.kernels.serial import SerialKernel
from repro.kernels.subvector import SubvectorKernel
from repro.kernels.vector import VectorKernel

__all__ = [
    "Kernel",
    "SerialKernel",
    "SubvectorKernel",
    "VectorKernel",
    "kernel_registry",
    "get_kernel",
    "DEFAULT_KERNEL_NAMES",
    "SUBVECTOR_WIDTHS",
]
