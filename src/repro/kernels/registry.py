"""Kernel registry: the paper's nine-kernel candidate pool.

The registry maps kernel names to singleton instances.  Names are stable
identifiers used as the ``kernelID`` target attribute of the second
classifier stage, so order and spelling matter for trained models.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import KernelError
from repro.kernels.base import Kernel
from repro.kernels.serial import SerialKernel
from repro.kernels.subvector import SubvectorKernel
from repro.kernels.vector import VectorKernel

__all__ = ["kernel_registry", "get_kernel", "DEFAULT_KERNEL_NAMES", "SUBVECTOR_WIDTHS"]

#: Subvector widths in the pool.  The paper enumerates
#: {2, 4, 16, 32, 64, 128} yet counts nine kernels; X=8 is included to
#: reach serial + 7 + vector = 9 (see DESIGN.md).
SUBVECTOR_WIDTHS: Tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128)


def _build_registry() -> Dict[str, Kernel]:
    kernels: list[Kernel] = [SerialKernel()]
    kernels.extend(SubvectorKernel(x) for x in SUBVECTOR_WIDTHS)
    kernels.append(VectorKernel())
    return {k.name: k for k in kernels}


_REGISTRY = _build_registry()

#: The nine kernel names, in serial -> subvector -> vector order.
DEFAULT_KERNEL_NAMES: Tuple[str, ...] = tuple(_REGISTRY.keys())


def kernel_registry() -> Dict[str, Kernel]:
    """A fresh name->kernel mapping of the full candidate pool."""
    return dict(_REGISTRY)


def get_kernel(name: str) -> Kernel:
    """Look up one kernel by registry name.

    Raises
    ------
    KernelError
        For unknown names (with the list of valid ones).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KernelError(
            f"unknown kernel {name!r}; expected one of {list(DEFAULT_KERNEL_NAMES)}"
        ) from None
