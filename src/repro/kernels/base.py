"""Kernel abstraction shared by the whole pool.

A :class:`Kernel` is a *strategy*: the same mathematical operation
(per-row dot products with the input vector) realised with a particular
thread organisation.  The auto-tuner treats kernels as opaque -- it only
ever calls :meth:`Kernel.compute` (for results) and :meth:`Kernel.cost`
(for predicted :class:`~repro.device.dispatch.DispatchStats`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.device.dispatch import DispatchStats
from repro.device.spec import DeviceSpec
from repro.errors import KernelError, ShapeError
from repro.formats.csr import CSRMatrix
from repro.utils.primitives import exclusive_scan, segmented_sum

__all__ = ["Kernel", "row_products", "row_products_batch", "pad_reshape"]

#: Wavefront-instruction budget charged per row for prologue/epilogue
#: (index load from the bin array, rowptr reads, result store).
ROW_OVERHEAD_INSTR = 2.0
#: Per-wavefront fixed instructions (launch prologue).
WAVE_OVERHEAD_INSTR = 8.0


def row_products(
    matrix: CSRMatrix, v: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gathered per-element products for the selected rows.

    Returns ``(products, offsets)`` where ``products`` concatenates
    ``val[j] * v[colidx[j]]`` for each selected row in order and
    ``offsets`` is the CSR-style boundary array (length ``len(rows)+1``).
    """
    v = np.asarray(v, dtype=np.float64)
    if v.shape != (matrix.ncols,):
        raise ShapeError(f"vector has shape {v.shape}, expected ({matrix.ncols},)")
    rows = np.asarray(rows, dtype=np.int64)
    lengths = matrix.row_lengths()[rows]
    offsets = exclusive_scan(lengths)
    nnz = int(offsets[-1])
    if nnz == 0:
        return np.zeros(0), offsets
    within = np.arange(nnz) - np.repeat(offsets[:-1], lengths)
    src = np.repeat(matrix.rowptr[rows], lengths) + within
    return matrix.val[src] * v[matrix.colidx[src]], offsets


def row_products_batch(
    matrix: CSRMatrix, dense: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Multi-RHS analogue of :func:`row_products`.

    ``dense`` is an ``(ncols, k)`` block of right-hand sides.  Returns
    ``(products, offsets)`` where ``products`` has shape ``(nnz, k)`` and
    row ``j`` holds ``val[j] * dense[colidx[j], :]``.  Column ``c`` of
    the result equals ``row_products(matrix, dense[:, c], rows)[0]``
    exactly, so batched execution can reduce all ``k`` columns in one
    pass without changing any floating-point outcome.
    """
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != matrix.ncols:
        raise ShapeError(
            f"operand has shape {dense.shape}, expected ({matrix.ncols}, k)"
        )
    rows = np.asarray(rows, dtype=np.int64)
    lengths = matrix.row_lengths()[rows]
    offsets = exclusive_scan(lengths)
    nnz = int(offsets[-1])
    if nnz == 0:
        return np.zeros((0, dense.shape[1])), offsets
    within = np.arange(nnz) - np.repeat(offsets[:-1], lengths)
    src = np.repeat(matrix.rowptr[rows], lengths) + within
    return matrix.val[src, None] * dense[matrix.colidx[src]], offsets


def pad_reshape(values: np.ndarray, width: int, fill=0) -> np.ndarray:
    """Pad a 1-D array to a multiple of ``width`` and reshape to 2-D.

    The shared windowing helper of the cost models: one output row per
    wavefront-sized window.
    """
    if width <= 0:
        raise KernelError(f"width must be > 0, got {width}")
    values = np.asarray(values)
    n = len(values)
    n_win = -(-n // width) if n else 0
    padded = np.full(n_win * width, fill, dtype=values.dtype)
    padded[:n] = values
    return padded.reshape(n_win, width)


class Kernel(ABC):
    """One SpMV thread-organisation strategy."""

    #: Unique registry name, e.g. ``"serial"`` or ``"subvector16"``.
    name: str = "abstract"

    @abstractmethod
    def compute(
        self,
        matrix: CSRMatrix,
        v: np.ndarray,
        rows: np.ndarray,
        *,
        emulate: bool = False,
    ) -> np.ndarray:
        """Dot products of the selected ``rows`` of ``matrix`` with ``v``.

        With ``emulate=True`` the kernel reproduces the OpenCL
        implementation's lane-level staging and reduction order exactly
        (slow; for validation).  The default fast path is vectorised and
        equal up to floating-point association.
        """

    @abstractmethod
    def cost(
        self,
        row_lengths: np.ndarray,
        locality: float,
        spec: DeviceSpec,
    ) -> DispatchStats:
        """Predicted execution statistics for a bin with these row lengths.

        ``locality`` is the matrix's measured gather locality (see
        :func:`repro.device.memory.gather_locality`); ``row_lengths``
        holds the *actual* per-row non-zero counts of every row assigned
        to the bin, in launch order.
        """

    # Convenience shared by implementations ------------------------------
    @staticmethod
    def _fast_row_dots(
        matrix: CSRMatrix, v: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Vectorised per-row dot products (fast path)."""
        products, offsets = row_products(matrix, v, rows)
        return segmented_sum(products, offsets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
