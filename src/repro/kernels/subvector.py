"""Kernel-SubvectorX: X threads per row (the paper's Algorithm 4).

Every group of ``X`` threads (a *subvector*) owns one row.  Each round,
each thread stages ``factor`` (=4) strided products into local memory,
the subvector performs a segmented parallel reduction of width ``X``,
and lane 0 accumulates the partial result; rounds repeat until the row
is consumed.  Loads by the ``X`` consecutive lanes hit consecutive
elements, so streams coalesce; divergence is limited to the difference
in *round counts* between the rows sharing a wavefront (not raw row
lengths as in Kernel-Serial).
"""

from __future__ import annotations

import numpy as np

from repro.device.dispatch import DispatchStats
from repro.device.memory import (
    CSR_ELEMENT_BYTES,
    VALUE_BYTES,
    gather_lines,
    stream_lines,
    strided_waste_factor,
)
from repro.device.spec import DeviceSpec
from repro.errors import KernelError
from repro.formats.csr import CSRMatrix
from repro.kernels.base import (
    ROW_OVERHEAD_INSTR,
    WAVE_OVERHEAD_INSTR,
    Kernel,
    pad_reshape,
    row_products,
)
from repro.utils.primitives import segmented_reduce_tree

__all__ = ["SubvectorKernel", "FACTOR"]

#: LDS staging factor from Algorithm 4 (``factor = 4``).
FACTOR = 4
#: Instructions per round, excluding the reduction tree: ``factor``
#: guarded loads + ``factor`` LDS stores + loop/address bookkeeping.
BASE_INSTR_PER_ROUND = 2.0 * FACTOR + 4.0
#: Instructions per reduction-tree step (LDS read + add + LDS write).
INSTR_PER_REDUCE_STEP = 2.0
#: Instructions charged per intra-wavefront barrier (nearly free on GCN:
#: lanes of one wavefront run in lock-step).
INSTR_PER_BARRIER = 2.0
#: Instruction-equivalents charged per *cross-wavefront* barrier (real
#: synchronisation through the LDS/hardware barrier, needed when a row's
#: threads span several wavefronts: X > 64 and Kernel-Vector).
INSTR_PER_CROSS_WAVE_BARRIER = 12.0


class SubvectorKernel(Kernel):
    """``X`` threads per row with LDS staging (Algorithm 4)."""

    def __init__(self, x: int):
        if x < 2 or (x & (x - 1)) != 0:
            raise KernelError(f"subvector width must be a power of two >= 2, got {x}")
        self.x = int(x)
        self.name = f"subvector{self.x}"

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def compute(
        self,
        matrix: CSRMatrix,
        v: np.ndarray,
        rows: np.ndarray,
        *,
        emulate: bool = False,
    ) -> np.ndarray:
        if not emulate:
            return self._fast_row_dots(matrix, v, rows)
        products, offsets = row_products(matrix, v, rows)
        out = np.zeros(len(rows))
        x, chunk = self.x, FACTOR * self.x
        for i in range(len(rows)):
            start, end = int(offsets[i]), int(offsets[i + 1])
            acc = 0.0
            for round_start in range(start, end, chunk):
                # Each lane t stages its `factor` strided elements and
                # locally sums them (the per-lane accumulation the staging
                # loop performs), then the subvector tree-reduces.
                lanes = np.zeros(x)
                for t in range(x):
                    lane_acc = 0.0
                    for k in range(FACTOR):
                        j = round_start + t + k * x
                        if j < end:
                            lane_acc += products[j]
                    lanes[t] = lane_acc
                acc += float(segmented_reduce_tree(lanes, x)[0])
            out[i] = acc
        return out

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    def cost(
        self,
        row_lengths: np.ndarray,
        locality: float,
        spec: DeviceSpec,
    ) -> DispatchStats:
        lengths = np.asarray(row_lengths, dtype=np.float64)
        n_rows = len(lengths)
        if n_rows == 0:
            return DispatchStats.empty()
        x = self.x
        chunk = FACTOR * x
        rounds = np.ceil(np.maximum(lengths, 1) / chunk)  # >=1 round per row

        barrier = (
            INSTR_PER_BARRIER
            if x <= spec.wavefront_size
            else INSTR_PER_CROSS_WAVE_BARRIER
        )
        # The staging loop executes ceil(len/X) guarded iterations per
        # round, up to FACTOR; short rows exit early (uniformly across
        # the subgroup), so partial rounds cost proportionally less.
        mean_len = float(lengths.mean()) if n_rows else 0.0
        staging_iters = float(np.clip(np.ceil(mean_len / x), 1.0, FACTOR))
        instr_per_round = (
            2.0 * staging_iters
            + 4.0
            + INSTR_PER_REDUCE_STEP * np.log2(x)
            + 2.0 * barrier
        )

        w = spec.wavefront_size
        if x <= w:
            # 64/X rows share a wavefront; divergence over their rounds.
            rows_per_wave = w // x
            windows = pad_reshape(rounds, rows_per_wave)
            wave_rounds = windows.max(axis=1)
            n_waves = len(wave_rounds)
            waves_per_row = 1.0
        else:
            # One row spans X/64 wavefronts, all executing every round.
            waves_per_row = x / w
            wave_rounds = rounds  # per row; each of its waves runs these
            n_waves = int(n_rows * waves_per_row)

        n_workgroups = -(-(n_rows * x) // spec.workgroup_size)
        compute = float(
            (wave_rounds * instr_per_round).sum() * waves_per_row
            # Prologue/launch setup is shared by a work-group's waves.
            + n_workgroups * WAVE_OVERHEAD_INSTR
            + n_waves * 2.0
            + n_rows * ROW_OVERHEAD_INSTR
        )
        longest = float(
            wave_rounds.max() * instr_per_round + WAVE_OVERHEAD_INSTR
        )

        # Streams coalesce within each X-lane subgroup.  Rows consumed in
        # a *single* staging round are read as one tight burst of
        # back-to-back instructions, so their cache lines are reused
        # before eviction and adjacent rows chain into a contiguous
        # stream (waste 1).  Multi-round rows re-expose the strided
        # pattern between rounds (see strided_waste_factor).  The blend
        # is weighted by *bytes* (waste is a traffic multiplier), so a
        # bin whose few long rows carry most of the non-zeros is charged
        # correctly -- the heterogeneity penalty binning exists to avoid.
        total_elems = float(lengths.sum())
        multi = rounds > 1.0
        multi_elems = float(lengths[multi].sum())
        if total_elems > 0 and multi_elems > 0:
            frac_multi = multi_elems / total_elems
            mean_multi = float(lengths[multi].mean())
            waste = (1.0 - frac_multi) + frac_multi * float(
                strided_waste_factor(x, mean_multi, spec)
            )
        else:
            waste = 1.0
        matrix_lines = float(
            stream_lines(lengths.sum() * CSR_ELEMENT_BYTES, spec) * waste
            + n_workgroups  # boundary line per work-group's span
        )
        vec_lines = float(gather_lines(lengths, locality, spec).sum())
        aux_lines = float(stream_lines(n_rows * (3 * VALUE_BYTES), spec))

        lds_per_wg = spec.workgroup_size * FACTOR * VALUE_BYTES
        return DispatchStats(
            compute_instructions=compute,
            longest_wave_instructions=longest,
            longest_dependent_iterations=float(rounds.max()),
            memory_lines=matrix_lines + vec_lines + aux_lines,
            n_waves=float(n_waves),
            n_workgroups=float(n_workgroups),
            lds_bytes_per_wg=lds_per_wg,
        )
