"""repro: auto-tuned CSR SpMV for multi- and many-core processors.

A production-quality reproduction of *"Auto-Tuning Strategies for
Parallelizing Sparse Matrix-Vector (SpMV) Multiplication on Multi- and
Many-Core Processors"* (Kaixi Hou, Wu-chun Feng, Shuai Che).

Quickstart
----------
>>> import numpy as np
>>> from repro import AutoTuner, generate_collection, bimodal_rows
>>> tuner = AutoTuner()
>>> report = tuner.fit(generate_collection(60, seed=0, size_range=(200, 2000)))
>>> matrix = bimodal_rows(5_000, seed=1)
>>> result = tuner.run(matrix, np.ones(matrix.ncols))
>>> np.allclose(result.u, matrix @ np.ones(matrix.ncols))
True

See ``README.md`` for the architecture overview and ``DESIGN.md`` for
the full system inventory.
"""

from repro.baselines import CSRAdaptiveSpMV, MergeSpMV, SingleKernelSpMV
from repro.binning import (
    CoarseBinning,
    FineBinning,
    HybridBinning,
    RowBlockBinning,
    SingleBinning,
)
from repro.core import (
    AutoTuner,
    ExecutionPlan,
    TrainingReport,
    TuningSpace,
    oracle_plan,
)
from repro.core.hetero import CPUModelSpec, HeterogeneousScheduler
from repro.device import (
    CPUExecutor,
    DeviceSpec,
    PartitionStrategy,
    SimulatedDevice,
)
from repro.features import extract_features
from repro.formats import (
    COOMatrix,
    CSRMatrix,
    DIAMatrix,
    ELLMatrix,
    HYBMatrix,
    convert,
    read_matrix_market,
    write_matrix_market,
)
from repro.kernels import DEFAULT_KERNEL_NAMES, get_kernel, kernel_registry
from repro.resilient import (
    ChaosDevice,
    CircuitBreaker,
    FaultKind,
    FaultSchedule,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.serve import (
    MatrixFingerprint,
    PlanCache,
    SpMVServer,
    fingerprint_matrix,
)
from repro.solvers import SolverResult, SolverSession, solve
from repro.spgemm import BinnedSpGEMM, spgemm_reference
from repro.matrices import (
    REPRESENTATIVE_NAMES,
    RowStats,
    bimodal_rows,
    generate_collection,
    representative_matrix,
    spd_system,
)

__version__ = "1.0.0"

__all__ = [
    # core framework
    "AutoTuner",
    "TrainingReport",
    "TuningSpace",
    "ExecutionPlan",
    "oracle_plan",
    # formats
    "CSRMatrix",
    "COOMatrix",
    "ELLMatrix",
    "DIAMatrix",
    "HYBMatrix",
    "convert",
    "read_matrix_market",
    "write_matrix_market",
    # device
    "DeviceSpec",
    "SimulatedDevice",
    "CPUExecutor",
    "PartitionStrategy",
    # kernels
    "DEFAULT_KERNEL_NAMES",
    "get_kernel",
    "kernel_registry",
    # binning
    "CoarseBinning",
    "FineBinning",
    "HybridBinning",
    "SingleBinning",
    "RowBlockBinning",
    # baselines
    "SingleKernelSpMV",
    "CSRAdaptiveSpMV",
    "MergeSpMV",
    # serving layer
    "SpMVServer",
    "PlanCache",
    "MatrixFingerprint",
    "fingerprint_matrix",
    # resilience layer
    "ResiliencePolicy",
    "RetryPolicy",
    "CircuitBreaker",
    "FaultSchedule",
    "FaultKind",
    "ChaosDevice",
    # solver workloads
    "SolverSession",
    "SolverResult",
    "solve",
    # extensions (paper SI / SVI generalisations)
    "BinnedSpGEMM",
    "spgemm_reference",
    "HeterogeneousScheduler",
    "CPUModelSpec",
    # matrices & features
    "REPRESENTATIVE_NAMES",
    "representative_matrix",
    "generate_collection",
    "bimodal_rows",
    "spd_system",
    "RowStats",
    "extract_features",
    "__version__",
]
