#!/usr/bin/env python3
"""Online learning in the serving loop: explore, observe, retrain.

The paper's C5.0 selection tree is trained offline and frozen.  This
example closes the loop: a server built with
``learning=LearningPolicy(...)`` keeps serving the tree's prediction
but spends a bounded exploration budget trying alternative
``(granularity U, kernel)`` arms, feeds the observed simulated latency
back into per-bucket arm tables, and -- once the decision log holds
enough live traffic -- regenerates the tree with
:func:`repro.learn.retrain` and hot-swaps it behind the selector.

The workload drifts on purpose: the first half is banded matrices
(where the offline heuristic is already near-optimal, so exploration
only costs its budget), the second half is CFD-like matrices, a family
the static tree misplans -- which the bandit discovers and corrects
mid-run.

Run:  python examples/online_learning.py
"""

import numpy as np

from repro.learn import LearningPolicy, retrain
from repro.matrices import generators as gen
from repro.serve import SpMVServer


def drifting_workload(n_per_phase=100, nrows=2000):
    """Banded traffic, then CFD-like traffic: the drift to adapt to."""
    banded = [gen.banded(nrows, bandwidth=4, seed=s) for s in (1, 2, 3)]
    cfd = [gen.cfd_like(nrows, seed=s) for s in (4, 5, 6)]
    mats = [banded[i % 3] for i in range(n_per_phase)]
    mats += [cfd[i % 3] for i in range(n_per_phase)]
    rng = np.random.default_rng(0)
    return [(m, rng.standard_normal(m.ncols)) for m in mats]


def serve(server, workload):
    """Push the workload through; return (simulated seconds, explored)."""
    total, explored = 0.0, 0
    for m, x in workload:
        result = server.submit(m, x)
        total += result.seconds
        explored += bool(result.explored)
    return total, explored


def main():
    workload = drifting_workload()

    # Baseline: the frozen offline tree.
    static = SpMVServer(None)
    static_total, _ = serve(static, workload)

    # The learned server: same base planner, plus a budgeted bandit
    # over a focused (U, kernel) grid.  epsilon=0 would reproduce the
    # static server bit for bit -- learning is strictly opt-in.
    policy = LearningPolicy(
        epsilon=0.3,
        max_explore_fraction=0.2,   # hard global regret budget
        max_explore_per_key=16,     # and a per-bucket cap
        granularities=(0, 10_000),
        kernel_names=("subvector8", "subvector32"),
        seed=7,
    )
    server = SpMVServer(None, learning=policy)
    online_total, explored = serve(server, workload)

    print("=== drifting workload: banded -> cfd_like ===")
    print(f"static tree : {static_total * 1e3:8.3f} ms simulated")
    print(f"online      : {online_total * 1e3:8.3f} ms simulated "
          f"({static_total / online_total:.2f}x, "
          f"{explored}/{len(workload)} requests explored)")

    print("\n=== selector accounting ===")
    print(server.stats().learning.describe())

    # Every decision is logged (bounded ring, JSONL-exportable) --
    # the audit trail *and* the training set for live retraining.
    log = server.selector.log
    print(f"\ndecision log : {log.stats().size} records "
          f"(replay digest {log.replay_digest()[:16]}...)")

    # Retrain the selection tree from the live log and hot-swap it.
    report = retrain(server.selector, min_records=40, note="drift demo")
    print(f"retrain      : {report.describe()}")
    print(f"provenance   : {server.selector.provenance[-1]}")

    # The swapped model now steers the incumbent: serve a little more
    # and watch the cfd bucket go straight to the learned arm.
    tail_total, _ = serve(server, workload[-30:])
    print(f"\npost-swap    : 30 cfd requests in {tail_total * 1e3:.3f} ms "
          f"simulated (model version "
          f"{server.selector.model_version})")


if __name__ == "__main__":
    main()
