#!/usr/bin/env python3
"""Incident observability: flight recorder, exemplars, debug bundles.

Aggregate metrics say *that* the p99 moved; an incident wants *which
requests* moved it.  This example walks the `repro.blackbox` loop:

1. serve chaotic traffic through a traced server with
   ``blackbox=BlackboxPolicy(bundle_dir=...)`` and a deliberately
   tight SLO -- the first breach auto-writes a debug bundle;
2. peek at the flight recorder (the bounded per-request ring the
   bundle's forensics come from) and the exemplar-tagged Prometheus
   export (the aggregate-to-request link);
3. load the bundle back and render the same incident report the
   ``python -m repro doctor`` CLI prints.

Run:  python examples/doctor.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.blackbox import BlackboxPolicy, find_bundles, load_bundle, render_report
from repro.matrices import generators as gen
from repro.observe import MetricsRegistry, to_prometheus_text
from repro.resilient import ChaosDevice, FaultSchedule, ResiliencePolicy
from repro.device import SimulatedDevice
from repro.serve import SpMVServer
from repro.trace import SLOTarget, TracingPolicy


def main() -> None:
    bundle_dir = Path(tempfile.mkdtemp(prefix="repro-bundles-"))
    registry = MetricsRegistry()

    # ------------------------------------------------------------------
    # 1. A chaotic, traced server with the blackbox flying.  The SLO is
    #    deliberately tiny so the demo breaches immediately; the bundle
    #    directory receives a rate-limited stream of snapshots.
    # ------------------------------------------------------------------
    server = SpMVServer(
        device=ChaosDevice(SimulatedDevice(), FaultSchedule(rate=0.1, seed=7)),
        resilience=ResiliencePolicy(),
        registry=registry,
        tracing=TracingPolicy(slo=SLOTarget(p99=1e-4)),
        blackbox=BlackboxPolicy(
            bundle_dir=str(bundle_dir),
            min_bundle_interval_seconds=0.05,
        ),
    )
    rng = np.random.default_rng(0)
    matrices = [gen.power_law_graph(1_500, seed=s) for s in range(3)]
    for i in range(24):
        m = matrices[i % len(matrices)]
        server.submit(m, rng.standard_normal(m.ncols), tenant=f"tenant-{i % 2}")
    server.close()

    print("=== blackbox accounting ===")
    print(server.stats().blackbox.describe())

    # ------------------------------------------------------------------
    # 2. The flight recorder and the exemplar-tagged export.
    # ------------------------------------------------------------------
    tail = server.blackbox.flight.tail(3)
    print("\n=== flight recorder (last 3 requests) ===")
    for record in tail:
        print(f"  #{record.seq}: tenant={record.tenant} "
              f"digest={record.digest[:8]} cache_hit={record.cache_hit} "
              f"wall={record.wall_seconds * 1e3:.3f} ms "
              f"trace={record.trace_id}")

    exemplar_lines = [
        line for line in to_prometheus_text(registry).splitlines()
        if "trace_id" in line
    ]
    print("\n=== exemplar-tagged histogram buckets ===")
    for line in exemplar_lines[:4]:
        print(f"  {line}")

    # ------------------------------------------------------------------
    # 3. Load the newest bundle and render the incident report -- the
    #    same page `python -m repro doctor <dir>` prints.
    # ------------------------------------------------------------------
    bundles = find_bundles(bundle_dir)
    print(f"\n=== {len(bundles)} debug bundle(s) under {bundle_dir} ===\n")
    bundle = load_bundle(bundles[-1])
    print(render_report(bundle, siblings=bundles))

    resolved = set(bundle.exemplar_trace_ids()) <= bundle.span_trace_ids()
    print(f"\nexemplars resolve to bundled spans: {resolved}")


if __name__ == "__main__":
    main()
