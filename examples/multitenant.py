#!/usr/bin/env python3
"""Multi-tenant front door: admission control, priorities, shedding.

A server carrying millions of users cannot treat traffic as one
anonymous stream: a single hot tenant would starve everyone else's
coalesce slots and blow every deadline.  The front door
(``SpMVServer(admission=AdmissionPolicy(...))``) adds four mechanisms
in front of the unchanged hot path:

1. per-tenant token-bucket rate limits (``TenantRateLimitError``);
2. priority classes -- ``latency`` is served strictly before
   ``batch``, but aged batch requests get promoted so they never
   starve;
3. deadline-aware shedding -- a request whose budget cannot cover the
   estimated queue-ahead work is rejected *at admission*, before it
   wastes a slot (``DeadlineExceededError``);
4. fair coalescing -- each coalesce group's width is split round-robin
   across tenants, so one firehose cannot monopolise a dispatch.

The same mechanisms run wall-clock-free inside the
:mod:`repro.bench.loadgen` simulator, which is how the overload gates
in ``benchmarks/bench_multitenant.py`` stay deterministic.

Run:  python examples/multitenant.py
"""

import numpy as np

from repro.bench.loadgen import TenantProfile, WorkloadSpec, constant_service, simulate
from repro.errors import TenantRateLimitError
from repro.matrices import generators as gen
from repro.serve import AdmissionPolicy, SpMVServer, TenantConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A server with an admission policy: 'web' is a latency tenant,
    # 'analytics' is a rate-limited batch tenant.  Unlisted tenants get
    # the policy-level defaults.
    # ------------------------------------------------------------------
    policy = AdmissionPolicy(
        rate=200.0,               # default per-tenant rate (req/s)
        burst=16.0,               # ... and burst allowance
        tenants={
            "analytics": TenantConfig(priority="batch", rate=100.0,
                                      burst=4.0, max_pending=32),
        },
        max_pending_per_tenant=64,
        aging_seconds=0.05,       # batch promoted after 50 ms waiting
        service_estimate=1e-3,    # for deadline feasibility checks
    )
    server = SpMVServer(admission=policy)
    matrix = gen.power_law_graph(5_000, seed=1)
    rng = np.random.default_rng(2)

    # ------------------------------------------------------------------
    # 2. Tenant-attributed submits.  The result carries the tenant and
    # resolved priority class; the front door accounts per tenant.
    # ------------------------------------------------------------------
    res = server.submit(matrix, rng.standard_normal(matrix.ncols),
                        tenant="web")
    print(f"web request served as ({res.tenant}, {res.priority})")

    # ------------------------------------------------------------------
    # 3. Overload one tenant: burst 4 at ~instant arrival rate means
    # request #5 onward sheds with a retry hint -- the other tenants'
    # budgets are untouched.
    # ------------------------------------------------------------------
    admitted = shed = 0
    for _ in range(12):
        try:
            server.submit(matrix, rng.standard_normal(matrix.ncols),
                          tenant="analytics")
            admitted += 1
        except TenantRateLimitError as exc:
            shed += 1
            hint = exc.retry_after
    print(f"analytics firehose: {admitted} admitted, {shed} shed "
          f"(retry after {hint:.3f}s)")
    print("\nfront door accounting:")
    print(server.frontdoor.stats().describe())

    # ------------------------------------------------------------------
    # 4. The same front door under a simulated 2x overload: the
    # discrete-event load generator runs on an injected clock, so the
    # latencies below are *simulated* seconds and replay byte-for-byte
    # (this is the deterministic harness behind BENCH_multitenant).
    # ------------------------------------------------------------------
    spec = WorkloadSpec(
        tenants=(
            TenantProfile(name="web", priority="latency", rate=100.0,
                          deadline=0.1, slo=0.025),
            TenantProfile(name="analytics", priority="batch", rate=150.0,
                          slo=2.0),
        ),
        duration=5.0,
        seed=7,
    )
    sim_policy = AdmissionPolicy(
        rate=400.0, burst=40.0,
        tenants={"analytics": TenantConfig(priority="batch", rate=250.0,
                                           max_pending=24)},
        aging_seconds=0.3,
        service_estimate=2e-3,
    )
    report = simulate(spec.scaled(2.0), sim_policy,
                      service_time=constant_service(2e-3))
    print("\nsimulated 2x overload:")
    print(report.describe())


if __name__ == "__main__":
    main()
