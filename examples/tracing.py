#!/usr/bin/env python3
"""Tracing: follow one request across threads, profile its kernels.

The metrics layer answers "how often / how long on average"; this
example shows the `repro.trace` layer answering "what did *this*
request do":

1. serve traffic through a sharded + coalescing server with
   ``tracing=TracingPolicy(...)`` -- every request gets a connected
   trace even though its work hops to shard workers and a shared
   coalesced dispatch;
2. print one request's plain-text timeline and export the whole run as
   Chrome trace-event JSON (load it in chrome://tracing or
   https://ui.perfetto.dev);
3. check latency SLOs from the server's health snapshot;
4. profile the analytical cost model: per-launch lane occupancy,
   memory-vs-compute split and roofline efficiency for the plan the
   server would run.

Run:  python examples/tracing.py
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.matrices import generators as gen
from repro.serve import SpMVServer
from repro.serve.server import heuristic_planner
from repro.shard.executor import ShardingPolicy
from repro.shard.scheduler import CoalescePolicy
from repro.trace import KernelProfiler, SLOTarget, TracingPolicy


def main() -> None:
    matrix = gen.power_law_graph(5_000, seed=0)
    rng = np.random.default_rng(1)

    # ------------------------------------------------------------------
    # 1. A traced, sharded, coalescing server under concurrent traffic.
    # ------------------------------------------------------------------
    with SpMVServer(
        sharding=ShardingPolicy(n_shards=4),
        scheduler=CoalescePolicy(max_batch=8, max_wait_seconds=0.02),
        tracing=TracingPolicy(slo=SLOTarget(p99=0.25)),
    ) as server:
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(
                lambda _: server.submit(
                    matrix, rng.standard_normal(matrix.ncols)
                ),
                range(16),
            ))

        # --------------------------------------------------------------
        # 2. One request's timeline, and the run's Chrome trace.
        # --------------------------------------------------------------
        last = results[-1]
        print(f"request trace {last.trace_id} "
              f"(coalesced width {last.coalesced_width}, "
              f"dispatch trace {last.dispatch_trace_id}):\n")
        print(server.trace_recorder.timeline(last.trace_id))
        with open("trace.json", "w", encoding="utf-8") as fh:
            fh.write(server.trace_recorder.chrome_trace_json(indent=2))
        print("\nfull run exported to trace.json "
              "(chrome://tracing / ui.perfetto.dev)")

        # --------------------------------------------------------------
        # 3. Are we meeting the latency objective?
        # --------------------------------------------------------------
        health = server.health_snapshot()
        print(f"\nSLO health: {health['status']}  "
              f"(p99 = {health['quantiles']['p99'] * 1e3:.2f} ms, "
              f"target {health['targets']['p99'] * 1e3:.0f} ms)")

    # ------------------------------------------------------------------
    # 4. Why those launches cost what they cost: the kernel profile.
    # ------------------------------------------------------------------
    print("\nkernel-level profile of the plan's launches:\n")
    plan = heuristic_planner(matrix)
    print(KernelProfiler().profile_plan(matrix, plan).describe())


if __name__ == "__main__":
    main()
