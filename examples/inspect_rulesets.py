#!/usr/bin/env python3
"""Inspect what the auto-tuner actually learned.

The paper's C5.0 hands back a *ruleset* -- human-readable if-then
statements over the Table I attributes.  This example trains the tuner,
prints both stages' rulesets and the stage-1 decision tree, then traces
one prediction step by step (features in, scheme out, kernels out).

Run:  python examples/inspect_rulesets.py
"""

import numpy as np

from repro import AutoTuner, generate_collection
from repro.features import extract_features
from repro.matrices import quantum_chemistry_like


def main() -> None:
    print("training (this measures every scheme x kernel on the corpus) ...")
    tuner = AutoTuner(seed=3)
    report = tuner.fit(
        generate_collection(100, seed=3, size_range=(2_000, 40_000))
    )
    print(f"  {report}\n")

    print("=" * 70)
    print("STAGE 1 ruleset: matrix features -> binning scheme")
    print("=" * 70)
    print(tuner.stage1_rules.render())

    print()
    print("=" * 70)
    print("STAGE 2 ruleset (first 15 rules): features + U + binID -> kernel")
    print("=" * 70)
    for rule in tuner.stage2_rules.rules[:15]:
        print(rule.render(tuner.stage2_rules.feature_names,
                          tuner.stage2_rules.class_names))
    print(f"... ({len(tuner.stage2_rules)} rules total)")

    print()
    print("=" * 70)
    print("STAGE 1 decision tree (first boosting trial)")
    print("=" * 70)
    from repro.ml.boosting import BoostedTreesClassifier
    from repro.ml.tree import DecisionTreeClassifier

    model = tuner.stage1_model
    if isinstance(model, BoostedTreesClassifier):
        print(f"[boosted committee of {model.n_trials_} trials; "
              f"showing trial 0]")
        print(model.trees_[0].to_text())
    elif isinstance(model, DecisionTreeClassifier):
        print(model.to_text())

    # ------------------------------------------------------------------
    # Trace one prediction.
    # ------------------------------------------------------------------
    matrix = quantum_chemistry_like(30_000, avg_nnz=90, tail_fraction=0.03,
                                    seed=9)
    feats = extract_features(matrix)
    print()
    print("=" * 70)
    print(f"tracing a prediction for {matrix}")
    print("=" * 70)
    print("extracted Table I features:")
    for name, value in zip(
        ("M", "N", "NNZ", "Var_NNZ", "Avg_NNZ", "Min_NNZ", "Max_NNZ"),
        feats.to_vector(),
    ):
        print(f"  {name:8s} = {value:g}")
    plan = tuner.plan(matrix)
    print("\npredicted plan:")
    print(plan.describe())

    oracle = tuner.oracle_plan(matrix)
    print(f"\noracle (exhaustive) scheme: {oracle.scheme.name}; "
          f"predicted {plan.predicted_seconds * 1e3:.3f} ms vs oracle "
          f"{oracle.predicted_seconds * 1e3:.3f} ms "
          f"({plan.predicted_seconds / oracle.predicted_seconds:.3f}x)")

    v = np.ones(matrix.ncols)
    result = tuner.run(matrix, v, plan=plan)
    assert np.allclose(result.u, matrix @ v, atol=1e-8)
    print("\nnumerical result verified.")


if __name__ == "__main__":
    main()
