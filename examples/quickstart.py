#!/usr/bin/env python3
"""Quickstart: train the auto-tuner, plan and run one SpMV.

This walks the paper's Figure 3 end to end:

1. build a training corpus (a synthetic stand-in for the UF collection),
2. offline-train the two-stage C5.0-style classifier,
3. feed a *new* matrix through the predict path (features -> binning
   scheme -> per-bin kernels),
4. execute the plan and compare against the single-kernel defaults.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AutoTuner,
    SingleKernelSpMV,
    bimodal_rows,
    generate_collection,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1-2. Offline phase: corpus + training.  80 small matrices keep the
    # demo quick; accuracy improves with more (the paper uses >2000).
    # ------------------------------------------------------------------
    print("training the auto-tuner on a synthetic corpus ...")
    tuner = AutoTuner(seed=0)
    corpus = generate_collection(80, seed=0, size_range=(2_000, 30_000))
    report = tuner.fit(corpus)
    print(f"  {report}")

    # ------------------------------------------------------------------
    # 3. Predict phase on an unseen matrix: mostly 2-nnz rows plus
    # contiguous blocks of 300-nnz rows (the paper's worked example).
    # ------------------------------------------------------------------
    matrix = bimodal_rows(
        60_000, short_len=2, long_len=300, long_fraction=0.05, seed=42
    )
    print(f"\nnew matrix: {matrix}")
    plan = tuner.plan(matrix)
    print("\npredicted execution plan:")
    print(plan.describe())

    # ------------------------------------------------------------------
    # 4. Execute and validate.
    # ------------------------------------------------------------------
    v = np.random.default_rng(7).standard_normal(matrix.ncols)
    result = tuner.run(matrix, v, plan=plan)
    assert np.allclose(result.u, matrix @ v, atol=1e-8), "wrong result!"
    print("\nresult verified against the reference SpMV")
    print(f"simulated time (kernel-auto) : {result.seconds * 1e3:8.3f} ms")

    for kernel_name in ("serial", "vector"):
        baseline = SingleKernelSpMV(kernel_name, tuner.device)
        t = baseline.time(matrix)
        print(
            f"simulated time ({baseline.name:13s}): {t * 1e3:8.3f} ms "
            f"({t / result.seconds:.2f}x slower)"
        )

    # Peek at what the classifier actually learned.
    print("\nstage-1 ruleset (binning-scheme selection):")
    print(tuner.stage1_rules.render())


if __name__ == "__main__":
    main()
