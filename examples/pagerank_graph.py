#!/usr/bin/env python3
"""PageRank over a scale-free web graph with auto-tuned SpMV.

Graph analytics is the other workload family the paper's introduction
motivates (the representative set contains four graph matrices).  This
example builds a power-law web graph with networkx, converts it to the
library's CSR format, and runs power-iteration PageRank where every
iteration's SpMV uses the tuner's plan.  It also contrasts the plan
against the one the tuner picks for a road network -- two graphs, two
different strategies, chosen automatically from the same trained model.

Run:  python examples/pagerank_graph.py
"""

import networkx as nx
import numpy as np

from repro import AutoTuner, generate_collection
from repro.formats import CSRMatrix
from repro.matrices import road_network


def graph_to_csr(graph: nx.DiGraph) -> CSRMatrix:
    """Column-stochastic transition matrix of ``graph`` in CSR form."""
    n = graph.number_of_nodes()
    nodes = {node: i for i, node in enumerate(graph.nodes())}
    rows, cols, vals = [], [], []
    for u in graph.nodes():
        out = list(graph.successors(u))
        if not out:
            continue
        w = 1.0 / len(out)
        for vtx in out:
            rows.append(nodes[vtx])  # transition INTO vtx
            cols.append(nodes[u])
            vals.append(w)
    return CSRMatrix.from_coo_arrays(
        np.array(rows), np.array(cols), np.array(vals), (n, n)
    )


def pagerank(tuner: AutoTuner, matrix: CSRMatrix, *, damping: float = 0.85,
             tol: float = 1e-10, max_iter: int = 200):
    """Power iteration; returns (scores, iterations, simulated seconds)."""
    n = matrix.nrows
    rank = np.full(n, 1.0 / n)
    plan = tuner.plan(matrix)
    total = 0.0
    for it in range(1, max_iter + 1):
        result = tuner.run(matrix, rank, plan=plan)
        total += result.seconds
        new_rank = damping * result.u + (1.0 - damping) / n
        # Redistribute the dangling-node mass uniformly.
        new_rank += damping * (1.0 - result.u.sum()) / n
        if np.abs(new_rank - rank).sum() < tol:
            return new_rank, it, total, plan
        rank = new_rank
    return rank, max_iter, total, plan


def main() -> None:
    print("training the auto-tuner ...")
    tuner = AutoTuner(seed=0)
    tuner.fit(generate_collection(60, seed=0, size_range=(2_000, 20_000)))

    # --- a scale-free web graph ---------------------------------------
    web = nx.scale_free_graph(20_000, seed=1)
    web = nx.DiGraph(web)  # collapse multi-edges
    transition = graph_to_csr(web)
    scores, iters, sim_t, plan = pagerank(tuner, transition)
    top = np.argsort(scores)[::-1][:5]
    print(f"\nscale-free web graph: {transition}")
    print(f"plan: {plan.scheme.name}, kernels {plan.kernel_summary()}")
    print(f"PageRank converged in {iters} iterations "
          f"({sim_t * 1e3:.2f} ms simulated SpMV time)")
    print("top-5 nodes:", ", ".join(
        f"{int(i)}({scores[i]:.4f})" for i in top))
    # Sanity: ranks form a distribution.
    assert abs(scores.sum() - 1.0) < 1e-6

    # --- a road network for contrast ----------------------------------
    road = road_network(40_000, seed=2)
    # Random walk: row-normalise the adjacency, then transpose so that
    # column j spreads node j's rank over its neighbours.
    out_deg = np.maximum(road.row_lengths(), 1).astype(float)
    normalised = CSRMatrix(
        road.rowptr,
        road.colidx,
        road.val * 0.0 + 1.0 / np.repeat(out_deg, road.row_lengths()),
        road.shape,
    )
    walk = normalised.transpose()
    _, iters2, sim_t2, plan2 = pagerank(tuner, walk)
    print(f"\nroad network: {walk}")
    print(f"plan: {plan2.scheme.name}, kernels {plan2.kernel_summary()}")
    print(f"PageRank converged in {iters2} iterations "
          f"({sim_t2 * 1e3:.2f} ms simulated SpMV time)")

    print("\nthe same trained model selects per-input strategies "
          "automatically.")


if __name__ == "__main__":
    main()
