#!/usr/bin/env python3
"""Heterogeneous bin scheduling across the APU's GPU and CPU.

The paper's conclusion (§VI) proposes scheduling "small sized but high
volume bins onto the throughput-oriented processors and the large sized
but low volume bins onto the latency-oriented processors" -- natural on
an HSA APU where both devices share memory.  This example implements
exactly that: the tuner's plan is split bin-by-bin between the simulated
GPU and a CPU model, and the two queues run concurrently.

It also demonstrates the SpGEMM generalisation (§I: the framework
"can be directly applied to other kernels ... such as SpGeMM").

Run:  python examples/heterogeneous_apu.py
"""

import numpy as np

from repro import (
    BinnedSpGEMM,
    HeterogeneousScheduler,
    SimulatedDevice,
    oracle_plan,
    spgemm_reference,
)
from repro.core.tuning_space import TuningSpace
from repro.matrices import fem_constrained, power_law_graph


def main() -> None:
    device = SimulatedDevice()

    # A FEM matrix with constraint blocks: the short-row bulk floods the
    # GPU, the dense constraint bins are few and latency-friendly.
    matrix = fem_constrained(
        120_000, avg_nnz=4, dense_len=500, dense_fraction=0.04, seed=1
    )
    # Force the paper's binned execution (granularity U=50, no
    # single-bin escape hatch) via the exhaustive oracle -- no training
    # needed to demonstrate the scheduling idea.
    space = TuningSpace(granularities=(50,), include_single_bin=False)
    plan = oracle_plan(matrix, device, space)
    print(f"matrix: {matrix}")
    print(f"plan: {plan.scheme.name}, {plan.n_launches} bins, "
          f"kernels {plan.kernel_summary()}")

    v = np.random.default_rng(2).standard_normal(matrix.ncols)
    scheduler = HeterogeneousScheduler(device)
    hetero = scheduler.run(matrix, v, plan)
    gpu_only = device.run_spmv(
        matrix, v, plan.dispatches(),
        extra_seconds=plan.scheme.overhead_seconds(matrix, device.spec),
    )
    assert np.allclose(hetero.u, matrix @ v, atol=1e-8)

    print(f"\nGPU-only makespan     : {gpu_only.seconds * 1e3:8.3f} ms")
    print(f"heterogeneous makespan: {hetero.seconds * 1e3:8.3f} ms "
          f"({gpu_only.seconds / hetero.seconds:.2f}x)")
    print(f"  GPU queue: {hetero.gpu_bins} bins, "
          f"{hetero.gpu_seconds * 1e3:.3f} ms")
    print(f"  CPU queue: {hetero.cpu_bins} bins, "
          f"{hetero.cpu_seconds * 1e3:.3f} ms")
    for b, placement in sorted(hetero.assignment.items()):
        rows = dict(plan.binning.non_empty())[b]
        print(f"    bin {b:3d} ({len(rows):6d} rows) -> {placement}")

    # ------------------------------------------------------------------
    # SpGEMM generalisation: same binning idea, FLOP workloads.
    # ------------------------------------------------------------------
    print("\nSpGEMM generalisation (A @ A on a scale-free graph):")
    a = power_law_graph(25_000, avg_degree=4, exponent=1.9,
                        sorted_rows=True, seed=3)
    spgemm = BinnedSpGEMM(u=50, device=device)
    result = spgemm.multiply(a, a)
    reference = spgemm_reference(a, a)
    assert result.c.equals(reference, tol=1e-9)
    print(f"  C = A @ A: {result.c}")
    print(f"  {result.n_launches} bins, simulated "
          f"{result.seconds * 1e3:.3f} ms")
    used = {}
    for b, (name, t) in sorted(result.bin_strategies.items()):
        used.setdefault(name, 0)
        used[name] += 1
    print(f"  accumulator strategies used per bin: {used}")


if __name__ == "__main__":
    main()
