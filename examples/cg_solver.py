#!/usr/bin/env python3
"""Conjugate-gradient solver driven by auto-tuned SpMV.

The paper's opening motivation: "SpMV is an important computational
kernel in sparse linear system solvers".  This example builds a 2-D
Poisson system (5-point stencil), plans the SpMV *once* with the
auto-tuner, and reuses the plan inside every CG iteration -- the
amortisation pattern real solvers use (plan once, multiply thousands of
times).  It reports both the solver's numerical behaviour and the
accumulated simulated SpMV time under three strategies.

Run:  python examples/cg_solver.py
"""

import numpy as np

from repro import AutoTuner, SingleKernelSpMV, generate_collection
from repro.formats import CSRMatrix
from repro.matrices import stencil_2d


def conjugate_gradient(
    apply_a,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iter: int = 500,
):
    """Textbook CG for SPD systems; ``apply_a`` is the matvec closure.

    Returns ``(x, iterations, residual_history)``.
    """
    x = np.zeros_like(b)
    r = b - apply_a(x)
    p = r.copy()
    rs = float(r @ r)
    history = [np.sqrt(rs)]
    for it in range(1, max_iter + 1):
        ap = apply_a(p)
        alpha = rs / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        history.append(np.sqrt(rs_new))
        if np.sqrt(rs_new) < tol * history[0]:
            return x, it, history
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, max_iter, history


def main() -> None:
    # The 5-point Laplacian is singular (Neumann-like rows sum to >=0 on
    # the boundary only); shift it to make a definite system.
    n_side = 120
    lap = stencil_2d(n_side, n_side, points=5)
    shifted = CSRMatrix(
        lap.rowptr,
        lap.colidx,
        lap.val + np.where(lap.colidx == np.repeat(
            np.arange(lap.nrows), lap.row_lengths()), 0.05, 0.0),
        lap.shape,
    )
    rng = np.random.default_rng(0)
    b = rng.standard_normal(shifted.nrows)
    print(f"Poisson system: {shifted} ({n_side}x{n_side} grid)")

    print("\ntraining the auto-tuner ...")
    tuner = AutoTuner(seed=0)
    tuner.fit(generate_collection(60, seed=0, size_range=(2_000, 20_000)))
    plan = tuner.plan(shifted)
    print(f"plan: {plan.scheme.name}, kernels {plan.kernel_summary()}")

    strategies = {
        "kernel-auto": lambda v: tuner.run(shifted, v, plan=plan),
        "kernel-serial": lambda v: SingleKernelSpMV(
            "serial", tuner.device
        ).run(shifted, v),
        "kernel-vector": lambda v: SingleKernelSpMV(
            "vector", tuner.device
        ).run(shifted, v),
    }

    print(f"\n{'strategy':14s} {'iters':>5s} {'rel.residual':>12s} "
          f"{'SpMV sim time':>14s}")
    for label, runner in strategies.items():
        accumulated = {"t": 0.0}

        def apply_a(v, runner=runner, acc=accumulated):
            result = runner(v)
            acc["t"] += result.seconds
            return result.u

        x, iters, history = conjugate_gradient(apply_a, b, tol=1e-8)
        residual = np.linalg.norm(shifted @ x - b) / np.linalg.norm(b)
        print(
            f"{label:14s} {iters:5d} {residual:12.2e} "
            f"{accumulated['t'] * 1e3:11.2f} ms"
        )

    print("\nall strategies converge identically (same arithmetic);")
    print("the auto-tuned plan just spends less simulated device time.")


if __name__ == "__main__":
    main()
