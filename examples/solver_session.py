#!/usr/bin/env python3
"""Solver sessions: iterative solvers as first-class serving workloads.

``examples/cg_solver.py`` hand-rolls CG against a planned SpMV --
the amortisation pattern shown manually.  ``repro.solvers`` makes it a
product surface: CG/BiCGSTAB/Jacobi/power iteration whose every SpMV
goes through ``SpMVServer.submit``, with a ``SolverSession`` reporting
per-iteration latency into an SLO monitor and keeping the convergence
history.  This example runs the same SPD solve three ways -- plain,
process-sharded, and under injected faults -- and shows that the
iterate history is identical where determinism is promised and the
answer is uncorrupted where it is not.

Run:  python examples/solver_session.py
"""

import numpy as np

from repro.device import SimulatedDevice
from repro.matrices import spd_system
from repro.resilient import (
    ChaosDevice,
    FaultSchedule,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.serve import SpMVServer
from repro.shard import ShardingPolicy
from repro.solvers import SolverSession, cg
from repro.trace import SLOTarget


def main() -> None:
    matrix = spd_system(3000, seed=0)
    b = np.random.default_rng(0).standard_normal(3000)
    print(f"system: {matrix}\n")

    # ------------------------------------------------------------------
    # 1. A plain solve.  The session owns its server; every iteration
    # is a real submit (fingerprint fast path + plan cache + tracing).
    # ------------------------------------------------------------------
    with SolverSession(matrix, slo=SLOTarget(p99=0.05)) as session:
        clean = cg(session, b, tol=1e-10)
        print(clean.describe())
        print(session.stats().describe())
        print(f"iteration SLO      : "
              f"{session.health_snapshot()['status']}\n")

    # ------------------------------------------------------------------
    # 2. The same solve over the process-sharded backend.  The iterate
    # history is bit-identical -- backends change *where* shard work
    # runs, never what it computes.
    # ------------------------------------------------------------------
    with SolverSession(
        matrix,
        sharding=ShardingPolicy(n_shards=4, backend="process"),
    ) as session:
        sharded = cg(session, b, tol=1e-10)
        print(sharded.describe())
    identical = (
        np.array_equal(sharded.x, clean.x)
        and [r.residual_norm for r in sharded.history]
        == [r.residual_norm for r in clean.history]
    )
    print(f"iterate history bit-identical to unsharded: {identical}\n")

    # ------------------------------------------------------------------
    # 3. The same solve with 10 % of device executions faulting.
    # Latency degrades (retries, possible serial fallback); the
    # converged answer must not.
    # ------------------------------------------------------------------
    device = ChaosDevice(SimulatedDevice(), FaultSchedule(rate=0.1, seed=0))
    server = SpMVServer(
        device=device,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=4, backoff_base=1e-4,
                              backoff_max=1e-3),
        ),
    )
    with server:
        with SolverSession(matrix, server) as session:
            chaotic = cg(session, b, tol=1e-10)
            stats = session.stats()
    print(chaotic.describe())
    print(f"faults injected    : "
          f"{sum(device.injected_counts().values())} "
          f"({stats.attempts} attempts, "
          f"{stats.degraded_spmvs} degraded submits)")
    drift = float(np.max(np.abs(chaotic.x - clean.x)))
    print(f"max |x_chaos - x_clean|: {drift:.3e}  "
          f"(uncorrupted: {drift < 1e-7})")


if __name__ == "__main__":
    main()
