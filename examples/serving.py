#!/usr/bin/env python3
"""Serving: amortise tuning cost over repeated + batched SpMV traffic.

A deployed SpMV service sees the *same* sparsity patterns over and over
(iterative solvers, PageRank sweeps, time-stepping), usually with fresh
values or right-hand sides each call.  Re-running feature extraction,
classifier consultation and binning per call wastes exactly the work the
auto-tuner was built to save, so the serving layer splits the pipeline
along the inspector--executor line:

1. fingerprint the matrix structure (cheap hash);
2. hit the LRU plan cache, or plan on the first miss;
3. execute -- one vector, or a whole multi-RHS block in a single
   dispatch sequence.

Run:  python examples/serving.py
"""

import numpy as np

from repro import AutoTuner, SpMVServer, generate_collection
from repro.matrices import generators as gen


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Train a small tuner (any fitted AutoTuner works; the server
    # also runs planner-free with a heuristic if none is given).
    # ------------------------------------------------------------------
    print("training a small tuner for the server ...")
    tuner = AutoTuner(classifier="tree", seed=0)
    tuner.fit(generate_collection(40, seed=0, size_range=(500, 5_000)))
    server = SpMVServer(tuner, cache_capacity=16)

    # ------------------------------------------------------------------
    # 2. Repeated single-RHS traffic: an iterative solver re-submits one
    # pattern with an evolving vector.  Only request #1 plans.
    # ------------------------------------------------------------------
    matrix = gen.power_law_graph(20_000, seed=1)
    rng = np.random.default_rng(2)
    for step in range(6):
        res = server.submit(matrix, rng.standard_normal(matrix.ncols))
        tag = "hit " if res.cache_hit else "MISS"
        print(f"  step {step}: cache {tag}  plan={res.plan.scheme.name} "
              f"({res.n_dispatches} launches, {res.seconds * 1e3:.3f} ms sim)")

    # ------------------------------------------------------------------
    # 3. Batched traffic: 8 right-hand sides, one dispatch sequence.
    # Column j is bit-identical to submit(matrix, X[:, j]).
    # ------------------------------------------------------------------
    X = rng.standard_normal((matrix.ncols, 8))
    batch = server.submit_batch(matrix, X)
    singles = [server.submit(matrix, X[:, j]) for j in range(8)]
    identical = all(
        np.array_equal(batch.y[:, j], singles[j].y) for j in range(8)
    )
    k_singles = sum(r.seconds for r in singles)
    print(f"\nbatch of 8: {batch.n_dispatches} launches, "
          f"{batch.seconds * 1e3:.3f} ms sim "
          f"vs {k_singles * 1e3:.3f} ms for 8 single submits "
          f"({k_singles / batch.seconds:.2f}x) -- "
          f"columns identical: {identical}")

    # ------------------------------------------------------------------
    # 4. The stats snapshot a load balancer / dashboard would scrape.
    # ------------------------------------------------------------------
    print("\nserver stats:")
    print(server.stats().describe())


if __name__ == "__main__":
    main()
