"""BENCH-MULTITENANT: front-door overload behaviour, deterministically.

One seeded three-tenant workload (two latency tenants with deadlines
and a 25 ms SLO, one batch tenant at higher volume) is pushed through
the :mod:`repro.bench.loadgen` discrete-event simulator against a
single simulated server at 1x, 2x and 3x intensity, under the
:class:`~repro.serve.frontdoor.AdmissionPolicy` a production deployment
would run: per-tenant token buckets, a tight pending bound on the batch
tenant, batch aging and deadline feasibility checks.

The experiment is wall-clock-free -- every latency below is *simulated*
seconds, so the acceptance gates hold on any host:

- at baseline (1x) nothing sheds and every class meets its SLO;
- at 2x overload the latency class's simulated p99 stays within its
  SLO and **at least 90 % of all shedding lands on batch traffic** --
  overload is paid by the traffic that can wait;
- a *naive* counterfactual (same 2x traffic, no priority classes, no
  per-tenant bounds) blows the latency SLO, proving the front door is
  load-bearing rather than decorative;
- the same spec + seed reproduces the report byte-for-byte.

Results land in ``benchmarks/results/BENCH_multitenant.json``.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import replace

from repro.bench.loadgen import (
    TenantProfile,
    WorkloadSpec,
    constant_service,
    simulate,
)
from repro.serve.frontdoor import AdmissionPolicy, TenantConfig

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_multitenant.json"
)

#: Simulated per-request service time: 2 ms => 500 req/s capacity.
SERVICE_SECONDS = 2e-3
SERVERS = 1
SEED = 2017
DURATION = 10.0

#: The latency-class objective the gates check (simulated seconds).
LATENCY_SLO = 0.025
LATENCY_DEADLINE = 0.1
BATCH_SLO = 2.0

#: Baseline intensity: 120 req/s latency + 180 req/s batch = 0.6
#: utilisation; 2x lands at 1.2x capacity, so *something* must shed.
WORKLOAD = WorkloadSpec(
    tenants=(
        TenantProfile(name="web", priority="latency", rate=80.0,
                      deadline=LATENCY_DEADLINE, slo=LATENCY_SLO),
        TenantProfile(name="mobile", priority="latency", rate=40.0,
                      deadline=LATENCY_DEADLINE, slo=LATENCY_SLO),
        TenantProfile(name="analytics", priority="batch", rate=180.0,
                      slo=BATCH_SLO),
    ),
    duration=DURATION,
    model="open",
    seed=SEED,
)

#: The production policy under test.  The batch tenant's pending bound
#: (24 requests ~ 48 ms of backlog) is deliberately *below* what its
#: aging window can promote: batch backlog sheds on the bound before
#: aged promotions can crowd the latency class.
POLICY = AdmissionPolicy(
    rate=400.0,
    burst=40.0,
    tenants={
        "analytics": TenantConfig(priority="batch", rate=300.0,
                                  max_pending=24),
    },
    max_pending_per_tenant=128,
    aging_seconds=0.3,
    service_estimate=SERVICE_SECONDS,
)

#: Counterfactual: same traffic, no tenant separation -- one class, no
#: rate limits, one effectively-unbounded shared queue.
NAIVE_POLICY = AdmissionPolicy(
    rate=math.inf,
    burst=40.0,
    max_pending_per_tenant=100_000,
    aging_seconds=math.inf,
    service_estimate=0.0,
)

OVERLOAD_FACTORS = (1.0, 2.0, 3.0)


def _naive_spec(spec: WorkloadSpec) -> WorkloadSpec:
    """The same arrivals with priority classes erased (all latency)."""
    return replace(
        spec,
        tenants=tuple(
            replace(t, priority="latency") for t in spec.tenants
        ),
    )


def _shed_share(report, priority: str) -> float:
    """Fraction of all shed requests that belonged to ``priority``."""
    total = sum(r.shed_total for r in report.classes.values())
    if total == 0:
        return float("nan")
    return report.classes[priority].shed_total / total


def run_multitenant_benchmark() -> dict:
    """Run every configuration; return the JSON-ready comparison."""
    service = constant_service(SERVICE_SECONDS)
    runs = {}
    for factor in OVERLOAD_FACTORS:
        report = simulate(
            WORKLOAD.scaled(factor), POLICY,
            service_time=service, servers=SERVERS,
        )
        runs[f"{factor:g}x"] = report
    naive = simulate(
        _naive_spec(WORKLOAD.scaled(2.0)), NAIVE_POLICY,
        service_time=service, servers=SERVERS,
    )
    repeat = simulate(
        WORKLOAD.scaled(2.0), POLICY,
        service_time=service, servers=SERVERS,
    )
    overload = runs["2x"]
    return {
        "experiment": "BENCH-MULTITENANT",
        "workload": {
            "model": WORKLOAD.model,
            "duration": DURATION,
            "seed": SEED,
            "service_seconds": SERVICE_SECONDS,
            "servers": SERVERS,
            "tenants": [t.name for t in WORKLOAD.tenants],
            "latency_slo": LATENCY_SLO,
        },
        "runs": {name: r.as_dict() for name, r in runs.items()},
        "naive_2x": naive.as_dict(),
        "gates": {
            "baseline_shed_total": runs["1x"].total.shed_total,
            "overload_latency_p99": overload.classes["latency"]
            .latency["p99"],
            "overload_latency_attainment": overload.classes["latency"]
            .slo_attainment,
            "overload_batch_shed_share": _shed_share(overload, "batch"),
            "overload_shed_total": overload.total.shed_total,
            "naive_latency_p99": naive.classes["latency"]
            .latency["p99"],
            "deterministic": (
                json.dumps(overload.as_dict(), sort_keys=True)
                == json.dumps(repeat.as_dict(), sort_keys=True)
            ),
        },
    }


def test_multitenant_overload_gates():
    """The front door's overload contract, checked in simulated time.

    Under 2x overload the latency class keeps its simulated p99 within
    the SLO and >= 90 % of shedding lands on batch traffic; the naive
    single-class counterfactual on the same arrivals blows the SLO.
    All simulated, all seeded: a failure here is a real behaviour
    change, never a noisy host.
    """
    result = run_multitenant_benchmark()
    gates = result["gates"]
    # Baseline is provisioned below capacity: nothing sheds.
    assert gates["baseline_shed_total"] == 0
    # At 2x overload something must give...
    assert gates["overload_shed_total"] > 0
    # ...but the latency class keeps its SLO...
    assert gates["overload_latency_p99"] <= LATENCY_SLO
    assert gates["overload_latency_attainment"] >= 0.99
    # ...because shedding lands on the traffic that can wait.
    assert gates["overload_batch_shed_share"] >= 0.90
    # Without the front door the same traffic blows the latency SLO.
    assert gates["naive_latency_p99"] > LATENCY_SLO
    # Simulated-time experiments replay byte-for-byte.
    assert gates["deterministic"]
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\n[saved to {RESULTS_PATH}]")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    test_multitenant_overload_gates()
    print(RESULTS_PATH.read_text())
