"""FIG8: binning overhead vs granularity U (paper Fig. 8)."""

import os

from repro.bench.figures import run_fig8

#: Smaller default than the paper's 1e7 keeps the bench snappy; set
#: REPRO_FIG8_ROWS=10000000 for the paper-sized run.
N_ROWS = int(os.environ.get("REPRO_FIG8_ROWS", "2000000"))


def test_fig8_binning_overhead(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_fig8(ctx, nrows=N_ROWS), iterations=1, rounds=1
    )
    persist(result)
    dev = result.data["device"]
    # Overhead decays with U; U=1 dominates, negligible by U=100.
    us = sorted(dev)
    assert all(dev[a] >= dev[b] for a, b in zip(us, us[1:]))
    assert dev[1] > 20 * dev[100]
