"""TAB2: the 16 representative matrices vs their paper shapes."""

from repro.bench.figures import run_table2


def test_table2_matrices(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_table2(ctx), iterations=1, rounds=1
    )
    persist(result)
    assert len(result.data) == 16
    # Per-row density signatures track the paper within 30%.
    for name, d in result.data.items():
        assert d["avg_nnz"] == __import__("pytest").approx(
            d["paper_avg_nnz"], rel=0.3
        ), name
