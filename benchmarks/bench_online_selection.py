"""BENCH-ONLINE: budgeted online selection on a drifting workload.

One seeded workload drifts mid-run: 120 requests over three banded
matrices (the offline heuristic tree is near-optimal there), then 120
requests over three CFD-like matrices -- a family the static tree
misplans by ~15 % against the best uniform ``(U, kernel)`` arm.  The
same request stream is served three ways:

- **static**: the plain server, offline tree only;
- **online**: ``SpMVServer(learning=LearningPolicy(...))`` -- the
  budgeted bandit seeds arm priors from the analytical model, explores
  under a 20 % global / 8-per-key budget, and switches its exploit arm
  once observations beat the tree;
- **epsilon-0**: the learned server with exploration disabled, which
  must be *byte-identical* to the static server (the opt-in property).

Everything is simulated seconds on the analytical device, so the gates
hold on any host:

- the online server's total simulated time beats the static server's
  (it pays a bounded exploration tax in phase 1 and wins it back with
  interest after the drift);
- exploration stays within the configured budget (global fraction and
  per-key cap);
- with ``epsilon=0`` results are byte-for-byte the static server's;
- two fresh online runs replay identically: equal decision-log
  ``replay_digest()`` and equal totals under the fixed seed;
- :func:`repro.learn.retrain` on the run's live decision log swaps in
  a version-1 tree that separates the two families.

Results land in ``benchmarks/results/BENCH_online.json``.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import List, Optional, Tuple

import numpy as np

from repro.formats import CSRMatrix
from repro.learn import LearningPolicy, retrain
from repro.matrices import generators as gen
from repro.serve import SpMVServer

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_online.json"
)

SEED = 2017
NROWS = 2000
REQUESTS_PER_PHASE = 120

#: The bandit under test: a focused candidate grid (the subvector
#: kernels that plausibly beat the tree on irregular rows) under a
#: hard 20 % global / 16-per-key exploration budget.
POLICY = LearningPolicy(
    epsilon=0.3,
    max_explore_fraction=0.2,
    max_explore_per_key=16,
    granularities=(0, 10_000),
    kernel_names=("subvector8", "subvector32"),
    seed=SEED,
)


def _workload() -> Tuple[List[CSRMatrix], List[np.ndarray]]:
    """The drifting request stream: banded phase, then CFD phase."""
    phase1 = [gen.banded(NROWS, bandwidth=4, seed=s) for s in (1, 2, 3)]
    phase2 = [gen.cfd_like(NROWS, seed=s) for s in (4, 5, 6)]
    mats = [phase1[i % 3] for i in range(REQUESTS_PER_PHASE)]
    mats += [phase2[i % 3] for i in range(REQUESTS_PER_PHASE)]
    rng = np.random.default_rng(0)
    vecs = [rng.standard_normal(m.ncols) for m in mats]
    return mats, vecs


def _run(learning: Optional[LearningPolicy]):
    """Serve the whole stream on a fresh server; return it + accounting."""
    mats, vecs = _workload()
    server = SpMVServer(None, learning=learning)
    total, explored, digest = 0.0, 0, hashlib.sha256()
    for m, x in zip(mats, vecs):
        r = server.submit(m, x)
        total += r.seconds
        explored += bool(r.explored)
        digest.update(np.ascontiguousarray(r.y).tobytes())
        digest.update(repr(r.seconds).encode())
    return server, total, explored, digest.hexdigest()


def run_online_selection_benchmark() -> dict:
    """Run every configuration; return the JSON-ready comparison."""
    _, static_total, _, static_digest = _run(None)
    online, online_total, explored, _ = _run(POLICY)
    repeat, repeat_total, _, _ = _run(POLICY)
    _, eps0_total, eps0_explored, eps0_digest = _run(
        LearningPolicy(
            epsilon=0.0,
            granularities=POLICY.granularities,
            kernel_names=POLICY.kernel_names,
            seed=SEED,
        )
    )
    stats = online.stats().learning
    per_key_explored: dict = {}
    for r in online.selector.log.records():
        if r.explored:
            per_key_explored[r.key] = per_key_explored.get(r.key, 0) + 1
    report = retrain(online.selector, min_records=40, note="bench drift")
    n_requests = 2 * REQUESTS_PER_PHASE
    return {
        "experiment": "BENCH-ONLINE",
        "workload": {
            "seed": SEED,
            "nrows": NROWS,
            "requests": n_requests,
            "phases": ["banded x3", "cfd_like x3"],
            "policy": {
                "epsilon": POLICY.epsilon,
                "max_explore_fraction": POLICY.max_explore_fraction,
                "max_explore_per_key": POLICY.max_explore_per_key,
                "granularities": list(POLICY.granularities),
                "kernels": list(POLICY.kernel_names),
            },
        },
        "simulated_seconds": {
            "static": static_total,
            "online": online_total,
            "epsilon0": eps0_total,
            "online_speedup": static_total / online_total,
        },
        "exploration": {
            "explored": explored,
            "rate": explored / n_requests,
            "per_key": dict(sorted(per_key_explored.items())),
            "regret_seconds": stats.regret_seconds,
        },
        "arms": [
            {"arm": a.arm, "pulls": a.pulls, "mean_seconds": a.mean_seconds}
            for a in stats.arms if a.pulls
        ],
        "retrain": {
            "swapped": report.swapped,
            "version": report.version,
            "n_used": report.n_used,
            "label_counts": report.label_counts,
        },
        "gates": {
            "online_beats_static": online_total < static_total,
            "explored_within_global_budget": (
                explored / n_requests <= POLICY.max_explore_fraction
            ),
            "explored_within_per_key_budget": all(
                n <= POLICY.max_explore_per_key
                for n in per_key_explored.values()
            ),
            "epsilon0_byte_identical": eps0_digest == static_digest,
            "epsilon0_explored": eps0_explored,
            "replay_deterministic": (
                online.selector.log.replay_digest()
                == repeat.selector.log.replay_digest()
                and online_total == repeat_total
            ),
            "retrain_swapped": report.swapped,
        },
    }


def test_online_selection_gates():
    """The online-learning contract, checked in simulated time.

    The learned server must beat the static tree on the drifting
    workload while spending at most its exploration budget; with
    exploration off it must be byte-identical to the static server;
    and the seeded decision stream must replay exactly.
    """
    result = run_online_selection_benchmark()
    gates = result["gates"]
    assert gates["online_beats_static"], result["simulated_seconds"]
    assert gates["explored_within_global_budget"], result["exploration"]
    assert gates["explored_within_per_key_budget"], result["exploration"]
    assert result["exploration"]["explored"] > 0  # the budget was used
    assert gates["epsilon0_byte_identical"]
    assert gates["epsilon0_explored"] == 0
    assert gates["replay_deterministic"]
    # The live log separates the two families into two arm labels.
    assert gates["retrain_swapped"]
    assert len(result["retrain"]["label_counts"]) >= 2
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\n[saved to {RESULTS_PATH}]")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    test_online_selection_gates()
    print(RESULTS_PATH.read_text())
