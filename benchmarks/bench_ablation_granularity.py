"""ABL-U: granularity sweep ablation (design-choice study)."""

from repro.bench.figures import run_ablation_granularity


def test_ablation_granularity(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_ablation_granularity(ctx), iterations=1, rounds=1
    )
    persist(result)
    for label, times in result.data.items():
        best = min(times.values())
        worst = max(times.values())
        # The sweep spans a real decision: schemes differ measurably.
        assert worst > best
