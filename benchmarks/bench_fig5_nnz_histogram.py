"""FIG5: pooled nnz/row histogram of the collection (paper Fig. 5)."""

from repro.bench.figures import run_fig5


def test_fig5_histogram(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_fig5(ctx, n_matrices=200), iterations=1, rounds=1
    )
    persist(result)
    # Paper: ~98.7% of rows have <= 100 nnz; synthetic corpus matches
    # the short-row-dominated shape.
    assert result.data["frac_le_100"] > 0.93
