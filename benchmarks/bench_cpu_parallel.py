"""CPU-REAL: genuine wall-clock multi-core SpMV (the title's "multi-core").

Unlike the simulated-device experiments, these benchmarks measure real
thread-pool execution with pytest-benchmark: single thread vs 4 threads,
row-balanced vs nnz-balanced partitioning, on a skewed matrix where the
balancing strategy matters.
"""

import numpy as np
import pytest

from repro.device.cpu import CPUExecutor, PartitionStrategy
from repro.matrices import generators as gen


@pytest.fixture(scope="module")
def skewed_problem():
    """A matrix whose nnz concentrate in one region (imbalance stressor)."""
    m = gen.fem_constrained(
        120_000, avg_nnz=5, dense_len=600, dense_fraction=0.05, seed=0
    )
    v = np.random.default_rng(1).standard_normal(m.ncols)
    return m, v, m @ v


@pytest.fixture(scope="module")
def pool():
    with CPUExecutor(n_threads=4) as ex:
        yield ex


def test_cpu_serial(benchmark, skewed_problem, pool):
    m, v, ref = skewed_problem
    out = benchmark(lambda: pool.spmv_serial(m, v))
    np.testing.assert_allclose(out, ref, atol=1e-9)


def test_cpu_parallel_rows_partition(benchmark, skewed_problem, pool):
    m, v, ref = skewed_problem
    out = benchmark(
        lambda: pool.spmv(m, v, strategy=PartitionStrategy.ROWS)
    )
    np.testing.assert_allclose(out, ref, atol=1e-9)


def test_cpu_parallel_nnz_partition(benchmark, skewed_problem, pool):
    m, v, ref = skewed_problem
    out = benchmark(
        lambda: pool.spmv(m, v, strategy=PartitionStrategy.NNZ)
    )
    np.testing.assert_allclose(out, ref, atol=1e-9)


def test_nnz_partition_balances_work(skewed_problem):
    """The NNZ strategy bounds per-chunk work; ROWS does not."""
    from repro.device.cpu import row_partition

    m, _, _ = skewed_problem
    for strategy, tolerance in (
        (PartitionStrategy.ROWS, 10.0),
        (PartitionStrategy.NNZ, 1.5),
    ):
        bounds = row_partition(m, 8, strategy)
        chunk_nnz = np.diff(m.rowptr[bounds])
        ratio = chunk_nnz.max() / max(chunk_nnz.mean(), 1)
        if strategy is PartitionStrategy.NNZ:
            assert ratio < tolerance
