"""Shared fixtures for the benchmark suite.

The trained tuners are expensive (tens of seconds) and shared across
every experiment via :func:`repro.bench.harness.bench_context`'s
module-level cache; fixtures here just expose them and persist each
experiment's report under ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.harness import bench_context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    """The shared trained benchmark context (device + tuners)."""
    return bench_context()


@pytest.fixture(scope="session")
def persist():
    """Callable writing an experiment report to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _persist(result) -> None:
        path = RESULTS_DIR / f"{result.experiment}.txt"
        path.write_text(result.report + "\n", encoding="utf-8")
        print(f"\n{result.report}\n[saved to {path}]")

    return _persist
