"""FIG7: speedup over CSR-Adaptive (paper Fig. 7: wins 10/16, <=1.9x)."""

from repro.bench.figures import run_fig7


def test_fig7_vs_csr_adaptive(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_fig7(ctx), iterations=1, rounds=1
    )
    persist(result)
    ratios = [d["csr_adaptive"] / d["auto"] for d in result.data.values()]
    # Both systems stay within a modest factor of each other everywhere
    # (paper: <=1.9x in auto's favour; CA wins 6 by smaller margins).
    assert all(0.5 < r < 2.5 for r in ratios)
    # auto wins at least the nnz-heavy irregular matrices.
    assert sum(r > 1 for r in ratios) >= 3
