"""ML-ERR: two-stage classifier error rates (paper: ~5% / ~15%)."""

from repro.bench.figures import run_ml_error_rates


def test_ml_error_rates(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_ml_error_rates(ctx), iterations=1, rounds=1
    )
    persist(result)
    # Hold-out errors stay in a usable band (paper: 5% / 15%).
    assert result.data["stage1_error"] <= 0.25
    assert result.data["stage2_error"] <= 0.45
    assert result.data["stage1_rules"] >= 1
