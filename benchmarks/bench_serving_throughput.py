"""BENCH-SERVING: unsharded vs sharded vs coalesced serving throughput.

Seeds the serving-layer perf trajectory: one seeded workload (repeated
single-RHS traffic over a few sparsity patterns) is served four ways --

- **unsharded**: the plain ``SpMVServer`` hot path, sequential submits;
- **sharded** (thread backend): ``ShardingPolicy(n_shards=4)`` -- each
  request executes as 4 nnz-balanced row-shards on concurrent devices,
  so the accounted simulated time per request is the shard *makespan*.
  Its *wall* throughput regresses vs unsharded (GIL-bound pure-Python
  shard work serialises; the regression is kept on record here);
- **sharded_process** (process backend): the same policy over a
  ``ProcessPoolExecutor`` with the CSR row-blocks published once per
  structure in ``multiprocessing.shared_memory`` -- only plan + shard
  descriptors cross the pickle boundary, and warm requests reuse
  worker-side bound plans.  This one must win in *wall clock* too;
- **coalesced**: ``scheduler=CoalescePolicy(...)`` with concurrent
  clients -- same-matrix requests share one multi-RHS dispatch, paying
  the per-dispatch overhead once per batch instead of once per vector.

A fifth configuration, **blackbox_on**, re-runs the unsharded path with
the incident flight recorder flying (``blackbox=BlackboxPolicy()``, no
bundle dir) and gates its overhead: wall p50 must stay within 1.05x of
the recorder-off baseline -- always-on observability that taxes the
hot path more than 5% is not always-on for long.

Two readings per configuration land in
``benchmarks/results/BENCH_serving.json``: wall requests/sec + p50/95/99
latency (real, host-dependent) and total *simulated* seconds from the
server's accounting (deterministic).  The acceptance gates: sharding
(makespan < single-device time) and coalescing (batched overhead
amortisation) beat the unsharded *simulated* baseline, the process
backend's *wall* p50 undercuts the unsharded wall p50, and the flight
recorder rides within the 1.05x envelope.
"""

from __future__ import annotations

import json
import pathlib
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

import numpy as np

from repro.blackbox import BlackboxPolicy
from repro.matrices import generators as gen
from repro.observe import NULL_REGISTRY
from repro.serve import SpMVServer
from repro.shard import CoalescePolicy, ShardingPolicy
from repro.trace import SlidingQuantiles

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_serving.json"
)

#: Seeded workload: a few patterns, many repeats (plan-cache-friendly
#: solver-style traffic where serving optimisations should pay off).
#: Sized so per-request device work dominates fixed submit overhead --
#: on narrow hosts the process backend's IPC round trip costs a few
#: hundred microseconds, and the win it is gated on (worker-side
#: memoised plan binding + accounting vs the unsharded path re-pricing
#: every dispatch per request) only shows once requests cost milliseconds.
N_MATRICES = 3
N_ROWS = 20_000
N_REQUESTS = 96
SEED = 0

SHARDS = 4
COALESCE_WIDTH = 8


def _workload():
    matrices = [
        gen.power_law_graph(N_ROWS, seed=SEED + i) for i in range(N_MATRICES)
    ]
    rng = np.random.default_rng(SEED)
    return [
        (matrices[i % N_MATRICES],
         rng.standard_normal(matrices[i % N_MATRICES].ncols))
        for i in range(N_REQUESTS)
    ]


def _drive(server: SpMVServer, requests, *, concurrency: int = 1) -> dict:
    """Serve the workload; return wall + simulated readings.

    Per-request wall latencies are collected around each ``submit`` and
    summarised as p50/p95/p99 (list appends are GIL-atomic, so the
    concurrent path needs no lock), and the server's per-stage wall
    accounting (fingerprint / plan / execute) rides along -- the
    breakdown that says *where* a regression lives, not just that one
    happened.
    """
    latencies: list = []

    def timed_submit(m, x):
        t = perf_counter()
        server.submit(m, x)
        latencies.append(perf_counter() - t)

    # Untimed warmup: populate the plan cache and fault in the numpy
    # kernels so the timed quantiles measure the steady state, not the
    # first-touch costs (which land on whichever config runs first and
    # would make the cross-config ratios order-dependent).
    for m, x in requests[:8]:
        server.submit(m, x)
    t0 = perf_counter()
    if concurrency == 1:
        for m, x in requests:
            timed_submit(m, x)
    else:
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            list(pool.map(lambda mx: timed_submit(mx[0], mx[1]), requests))
    wall = perf_counter() - t0
    server.close()  # drain any scheduler so the stats are final
    stats = server.stats()
    quantiles = SlidingQuantiles(window=max(1, len(latencies)))
    for v in latencies:
        quantiles.observe(v)
    reading = {
        "requests": len(requests),
        "wall_seconds": wall,
        "wall_requests_per_sec": len(requests) / wall,
        "wall_latency_quantiles": {
            name: quantiles.quantile(q)
            for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
        },
        "stage_seconds": dict(stats.stage_seconds),
        "simulated_seconds": stats.simulated_seconds,
        "dispatch_sequences": stats.dispatch_sequences,
        "kernel_launches": stats.kernel_launches,
    }
    if stats.scheduler is not None:
        reading["mean_batch_width"] = stats.scheduler.mean_width
        reading["batches"] = stats.scheduler.batches
    if stats.shards is not None:
        reading["max_imbalance"] = stats.shards.max_imbalance
    return reading


def run_serving_benchmark() -> dict:
    """Run all three configurations and return the comparison dict."""
    requests = _workload()
    # The recorder-overhead pair is driven twice, interleaved, and each
    # side keeps its better p50: the ratio being gated is ~1.0x, so a
    # single scheduler hiccup on either side would otherwise dominate
    # the comparison.  The other configs measure multi-x effects and a
    # single pass is plenty.
    unsharded_runs = []
    blackbox_runs = []
    for _ in range(2):
        unsharded_runs.append(_drive(
            SpMVServer(registry=NULL_REGISTRY), requests
        ))
        blackbox_runs.append(_drive(
            SpMVServer(registry=NULL_REGISTRY, blackbox=BlackboxPolicy()),
            requests,
        ))

    def _best(runs):
        return min(runs, key=lambda r: r["wall_latency_quantiles"]["p50"])

    unsharded = _best(unsharded_runs)
    blackbox_on = _best(blackbox_runs)
    sharded = _drive(
        SpMVServer(
            registry=NULL_REGISTRY,
            sharding=ShardingPolicy(n_shards=SHARDS),
        ),
        requests,
    )
    sharded_process = _drive(
        SpMVServer(
            registry=NULL_REGISTRY,
            sharding=ShardingPolicy(n_shards=SHARDS, backend="process"),
        ),
        requests,
    )
    coalesced = _drive(
        SpMVServer(
            registry=NULL_REGISTRY,
            scheduler=CoalescePolicy(
                max_batch=COALESCE_WIDTH, max_wait_seconds=0.01
            ),
        ),
        requests,
        concurrency=COALESCE_WIDTH,
    )
    base = unsharded["simulated_seconds"]
    return {
        "experiment": "BENCH-SERVING",
        "workload": {
            "family": "power_law_graph",
            "matrices": N_MATRICES,
            "nrows": N_ROWS,
            "requests": N_REQUESTS,
            "seed": SEED,
        },
        "configs": {
            "unsharded": unsharded,
            "blackbox_on": blackbox_on,
            "sharded": {**sharded, "n_shards": SHARDS, "backend": "thread"},
            "sharded_process": {
                **sharded_process, "n_shards": SHARDS, "backend": "process",
            },
            "coalesced": {**coalesced, "max_batch": COALESCE_WIDTH},
        },
        "simulated_speedup_vs_unsharded": {
            "sharded": base / sharded["simulated_seconds"],
            "sharded_process": base / sharded_process["simulated_seconds"],
            "coalesced": base / coalesced["simulated_seconds"],
        },
        "wall_p50_speedup_vs_unsharded": {
            "sharded": (unsharded["wall_latency_quantiles"]["p50"]
                        / sharded["wall_latency_quantiles"]["p50"]),
            "sharded_process": (
                unsharded["wall_latency_quantiles"]["p50"]
                / sharded_process["wall_latency_quantiles"]["p50"]
            ),
        },
        "blackbox_overhead_wall_p50": (
            blackbox_on["wall_latency_quantiles"]["p50"]
            / unsharded["wall_latency_quantiles"]["p50"]
        ),
    }


def test_serving_throughput_comparison():
    """Sharding and coalescing must beat the unsharded simulated cost.

    The wall-clock numbers are informational (host-dependent, and the
    simulated device underneath is cheap enough that Python overhead
    dominates); the *simulated* accounting is deterministic and is what
    this gate checks: sharded makespans and coalesced amortisation both
    undercut the one-device, one-vector baseline.
    """
    result = run_serving_benchmark()
    speedup = result["simulated_speedup_vs_unsharded"]
    assert speedup["sharded"] > 1.0
    assert speedup["sharded_process"] > 1.0
    assert speedup["coalesced"] > 1.0
    # The process backend must also win where the thread backend cannot:
    # real wall clock.  Warm requests skip fingerprint hashing (identity
    # cache), reuse worker-side bound plans, and cross the IPC boundary
    # once -- that has to undercut the full unsharded submit path.
    assert result["wall_p50_speedup_vs_unsharded"]["sharded_process"] > 1.0
    # The always-on flight recorder must stay within 5% of the plain
    # hot path at wall p50 -- one ring append per request, no more.
    assert result["blackbox_overhead_wall_p50"] <= 1.05
    # Coalescing genuinely batched (width > 1 on average).
    assert result["configs"]["coalesced"]["mean_batch_width"] > 1.0
    # The per-stage breakdown is present and ordered (p50 <= p99).
    for config in result["configs"].values():
        q = config["wall_latency_quantiles"]
        assert q["p50"] <= q["p95"] <= q["p99"]
        assert set(config["stage_seconds"]) >= {"fingerprint", "execute"}
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\n[saved to {RESULTS_PATH}]")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    test_serving_throughput_comparison()
    print(RESULTS_PATH.read_text())
