"""FIG2a/b: kernel choice matters per input and per bin (paper Fig. 2)."""

from repro.bench.figures import run_fig2a, run_fig2b


def test_fig2a_kernels_across_inputs(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_fig2a(ctx), iterations=1, rounds=1
    )
    persist(result)
    short = result.data["short-rows(road,~2.5nnz)"]
    long_ = result.data["long-rows(cfd,~600nnz)"]
    # Shape: narrow kernels win short rows, wide kernels win long rows.
    assert min(short, key=short.get) in ("serial", "subvector2")
    assert min(long_, key=long_.get) in ("subvector16", "subvector64",
                                         "vector")
    assert short["vector"] > 3 * min(short.values())
    assert long_["serial"] > 1.5 * min(long_.values())


def test_fig2b_kernels_across_bins(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_fig2b(ctx), iterations=1, rounds=1
    )
    persist(result)
    bests = {entry["best"] for entry in result.data.values()}
    # Different bins of the same matrix prefer different kernels.
    assert len(bests) >= 2
