"""FIG9: single-bin strategy on the six CA-won matrices (paper Fig. 9)."""

from repro.bench.figures import run_fig9


def test_fig9_single_bin_sweep(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_fig9(ctx), iterations=1, rounds=1
    )
    persist(result)
    reach = sum(
        1
        for d in result.data.values()
        if d[d["best"]] <= d["csr_adaptive"] * 1.10
    )
    # Paper: 4 of the 6 reach/beat CSR-Adaptive with the right single
    # kernel; require at least that the majority do.
    assert reach >= 3
