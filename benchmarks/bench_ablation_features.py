"""ABL-FEAT: basic vs extended features, tree vs boosting (paper SIV-C)."""

from repro.bench.figures import run_ablation_features


def test_ablation_features(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_ablation_features(ctx), iterations=1, rounds=1
    )
    persist(result)
    assert set(result.data) == {
        "basic+tree", "basic+boosted", "extended+tree", "extended+boosted"
    }
    # All variants learn something usable.
    assert all(err < 0.5 for err in result.data.values())
