"""BENCH-SOLVERS: end-to-end solver convergence through the serving layer.

One seeded SPD system, one seeded right-hand side, and the same CG
solve driven through an :class:`~repro.serve.SpMVServer` once per shard
execution backend (unsharded, inline, thread, process).  Per backend
the reading records what an operator of a solver service cares about:

- **convergence**: iterations to tolerance, final residual, and the
  full residual history (identical across backends -- the solve is
  deterministic, which the gate checks bit-for-bit);
- **end-to-end time**: wall seconds and *simulated* device seconds for
  the whole solve;
- **per-iteration latency**: p50/p99 over the solve's iterations, from
  the session's own :class:`~repro.trace.SLOMonitor`;
- **plan economy**: SpMV submits vs plan-cache hits (a healthy
  long-lived solve misses exactly once per (matrix, shard)).

A chaos acceptance run rides along: the same solve under a 10 %
seeded fault rate with the resilience layer on.  The gate: the faulted
solve converges to the same tolerance with every iterate finite and
its solution matching the clean run's -- latency may degrade, the
answer may not.

Results land in ``benchmarks/results/BENCH_solvers.json``.
"""

from __future__ import annotations

import json
import pathlib
from time import perf_counter

import numpy as np

from repro.matrices import generators as gen
from repro.observe import NULL_REGISTRY, MetricsRegistry
from repro.resilient import (
    ChaosDevice,
    FaultSchedule,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.device import SimulatedDevice
from repro.serve import SpMVServer
from repro.shard import ShardingPolicy
from repro.solvers import SolverSession, cg

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_solvers.json"
)

N_ROWS = 4000
SEED = 0
TOL = 1e-10
MAX_ITERATIONS = 400
SHARDS = 4
CHAOS_RATE = 0.1

#: (config name, ShardingPolicy or None) per backend under test.
CONFIGS = (
    ("unsharded", None),
    ("inline", ShardingPolicy(n_shards=SHARDS, backend="inline")),
    ("thread", ShardingPolicy(n_shards=SHARDS, backend="thread")),
    ("process", ShardingPolicy(n_shards=SHARDS, backend="process")),
)


def _system():
    matrix = gen.spd_system(N_ROWS, seed=SEED)
    b = np.random.default_rng(SEED).standard_normal(N_ROWS)
    return matrix, b


def _solve_reading(server: SpMVServer, matrix, b) -> dict:
    """Run the CG solve through ``server``; return the full reading."""
    with SolverSession(matrix, server) as session:
        t0 = perf_counter()
        result = cg(session, b, tol=TOL, max_iterations=MAX_ITERATIONS)
        wall = perf_counter() - t0
        stats = session.stats()
        health = session.health_snapshot()
    return {
        "converged": result.converged,
        "iterations": result.iterations,
        "residual_norm": result.residual_norm,
        "residual_history": [r.residual_norm for r in result.history],
        "convergence_wall_seconds": wall,
        "convergence_simulated_seconds": result.simulated_seconds,
        "iteration_latency_quantiles": {
            name: health["quantiles"][name] for name in ("p50", "p99")
        },
        "spmv_submits": stats.spmv_calls,
        "plan_cache_hits": stats.cache_hits,
        "degraded_submits": stats.degraded_spmvs,
        "resilience_attempts": stats.attempts,
    }


def run_solver_benchmark() -> dict:
    """CG per backend + the chaos acceptance run; comparison dict."""
    matrix, b = _system()
    configs = {}
    for name, sharding in CONFIGS:
        server = SpMVServer(registry=NULL_REGISTRY, sharding=sharding)
        reading = _solve_reading(server, matrix, b)
        server.close()
        if sharding is not None:
            reading["n_shards"] = sharding.n_shards
            reading["backend"] = (
                sharding.backend.value
                if hasattr(sharding.backend, "value") else sharding.backend
            )
        configs[name] = reading

    registry = MetricsRegistry()
    device = ChaosDevice(
        SimulatedDevice(registry=registry),
        FaultSchedule(rate=CHAOS_RATE, seed=SEED),
    )
    chaos_server = SpMVServer(
        device=device,
        registry=registry,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=4, backoff_base=1e-4,
                              backoff_max=1e-3),
        ),
    )
    chaos = _solve_reading(chaos_server, matrix, b)
    chaos_server.close()
    chaos["fault_rate"] = CHAOS_RATE
    chaos["faults_injected"] = sum(device.injected_counts().values())

    return {
        "experiment": "BENCH-SOLVERS",
        "workload": {
            "method": "cg",
            "family": "spd_system",
            "nrows": N_ROWS,
            "tol": TOL,
            "max_iterations": MAX_ITERATIONS,
            "seed": SEED,
        },
        "configs": configs,
        "chaos": chaos,
    }


def test_solver_convergence_benchmark():
    """Gates: every backend converges with the *same* iterate history,
    exactly one plan build per (matrix, shard), and the chaos run
    converges uncorrupted; then the JSON lands on disk."""
    result = run_solver_benchmark()
    configs = result["configs"]
    base = configs["unsharded"]
    assert base["converged"]
    # Plan economy: one miss total unsharded, one miss per shard group
    # otherwise -- every later iteration is a cache hit.
    assert base["plan_cache_hits"] == base["spmv_submits"] - 1
    for name in ("inline", "thread", "process"):
        reading = configs[name]
        assert reading["converged"], name
        # Identical convergence trajectory, bit for bit.
        assert reading["iterations"] == base["iterations"], name
        assert reading["residual_history"] == base["residual_history"], name
        assert reading["plan_cache_hits"] == reading["spmv_submits"] - 1
        q = reading["iteration_latency_quantiles"]
        assert 0.0 < q["p50"] <= q["p99"]

    chaos = result["chaos"]
    assert chaos["converged"]
    assert chaos["faults_injected"] > 0
    assert chaos["resilience_attempts"] > chaos["spmv_submits"]
    assert np.isfinite(chaos["residual_history"]).all()
    # Degraded latency is acceptable; a degraded *answer* is not.
    norm_b = float(np.linalg.norm(
        np.random.default_rng(SEED).standard_normal(N_ROWS)
    ))
    assert chaos["residual_norm"] <= 10 * TOL * norm_b

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\n[saved to {RESULTS_PATH}]")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    test_solver_convergence_benchmark()
    print(RESULTS_PATH.read_text())
