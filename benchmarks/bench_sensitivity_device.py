"""SENS-DEV: robustness of the conclusions to device-model constants.

A simulation-based reproduction should demonstrate its who-wins results
survive perturbation of the hand-set machine constants (bandwidth,
overlap penalty).  Uses oracle plans to factor out classifier noise.
"""

from repro.bench.figures import run_sensitivity_device


def test_sensitivity_device(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_sensitivity_device(ctx), iterations=1, rounds=1
    )
    persist(result)
    for label, per_matrix in result.data.items():
        for name, r in per_matrix.items():
            # The oracle never loses to either default (2% tolerance)...
            assert r["serial"] > 0.98, (label, name)
            assert r["vector"] > 0.98, (label, name)
        # ...and the matrix-class ordering is stable on every variant:
        # short-row matrices punish vector, long-row matrices punish
        # serial.
        assert per_matrix["roadNet-CA"]["vector"] > 3.0, label
        assert per_matrix["crankseg_2"]["serial"] > 1.5, label
