"""FIG6: kernel-auto vs kernel-serial / kernel-vector (paper Fig. 6)."""

from repro.bench.figures import run_fig6


def test_fig6_auto_vs_single_kernels(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_fig6(ctx), iterations=1, rounds=1
    )
    persist(result)
    ser = [d["serial"] / d["auto"] for d in result.data.values()]
    vec = [d["vector"] / d["auto"] for d in result.data.values()]
    # auto is never beaten by either default (allowing 2% noise)...
    assert min(ser) > 0.98 and min(vec) > 0.98
    # ...and wins big somewhere, with a wide spread as in the paper
    # (1.7-11.9x over serial, 1.2-52x over vector).
    assert max(ser) > 2.5
    assert max(vec) > 8.0
