"""TAB1: Table I feature parameters on the representative set."""

from repro.bench.figures import run_table1


def test_table1_features(benchmark, ctx, persist):
    result = benchmark.pedantic(
        lambda: run_table1(ctx), iterations=1, rounds=1
    )
    persist(result)
    assert len(result.data) == 16
    for feats in result.data.values():
        assert feats.min_nnz <= feats.avg_nnz <= feats.max_nnz
